//! Execution statistics: per-thread phase breakdowns and run-level metrics.
//!
//! The paper's evaluation (§V-B) splits execution time of the
//! *critical path* (the non-speculative thread) into
//! `work / join / idle / fork / find CPU`, and of the *speculative path*
//! into `wasted work / finalize / commit / validation / overflow / idle /
//! fork / find CPU` (plus useful work).  [`Phase`] enumerates those
//! categories and [`ThreadStats`] accumulates time per category, for both
//! the native runtime (nanoseconds) and the discrete-event simulator
//! (virtual cycles) — the unit is opaque to this module.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use mutls_adaptive::SiteProfile;
use mutls_membuf::{CommitLogStats, RollbackReason};
use mutls_trace::LatencyReport;
use serde::{Deserialize, JsonValue, Serialize};

/// Execution-time category, matching the paper's breakdown figures 8 and 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Useful work performed by the thread.
    Work,
    /// Work that was discarded because the thread rolled back.
    WastedWork,
    /// Scanning for an idle virtual CPU at a fork point.
    FindCpu,
    /// Setting up a speculative thread (saving locals, dispatch).
    Fork,
    /// Waiting: the non-speculative thread waiting at a join point, or a
    /// speculative thread waiting to be joined (barrier / completion).
    Idle,
    /// Synchronization bookkeeping at join points.
    Join,
    /// Read-set validation.
    Validation,
    /// Write-set commit (to memory or into the parent's buffers).
    Commit,
    /// Buffer finalization (clearing) after commit or rollback.
    Finalize,
    /// Time lost to buffer-overflow stalls.
    Overflow,
}

impl Phase {
    /// All phases in presentation order.
    pub const ALL: [Phase; 10] = [
        Phase::Work,
        Phase::WastedWork,
        Phase::FindCpu,
        Phase::Fork,
        Phase::Idle,
        Phase::Join,
        Phase::Validation,
        Phase::Commit,
        Phase::Finalize,
        Phase::Overflow,
    ];

    /// Human-readable label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Work => "work",
            Phase::WastedWork => "wasted work",
            Phase::FindCpu => "find CPU",
            Phase::Fork => "fork",
            Phase::Idle => "idle",
            Phase::Join => "join",
            Phase::Validation => "validation",
            Phase::Commit => "commit",
            Phase::Finalize => "finalize",
            Phase::Overflow => "overflow",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl Serialize for Phase {
    fn serialize_json(&self, out: &mut String) {
        self.label().serialize_json(out);
    }
}

impl Deserialize for Phase {
    fn deserialize(value: &JsonValue) -> Result<Self, String> {
        let label = String::deserialize(value)?;
        Phase::ALL
            .into_iter()
            .find(|p| p.label() == label)
            .ok_or_else(|| format!("unknown phase label `{label}`"))
    }
}

/// Event counters of one thread.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadCounters {
    /// Speculative threads forked by this thread.
    pub forks: u64,
    /// Fork attempts that found no idle CPU or were denied by the model.
    pub failed_forks: u64,
    /// Fork attempts suppressed by the adaptive speculation governor.
    pub throttled_forks: u64,
    /// Joins that committed.
    pub commits: u64,
    /// Joins that rolled back.
    pub rollbacks: u64,
    /// Rollbacks split by cause, indexed by [`RollbackReason::index`].
    pub rollbacks_by_reason: [u64; RollbackReason::COUNT],
    /// Conflict rollbacks whose conflicting words all still held their
    /// first-read values — suspected *false sharing* introduced by a
    /// commit-log grain coarser than a word (estimate; a value-identical
    /// ABA write is indistinguishable).
    pub false_sharing_suspects: u64,
    /// Joins whose conflict was repaired by value-predict-and-retry: the
    /// conflicting reads re-validated by value and the thread committed
    /// without re-execution.  **Not** counted in `rollbacks`.
    pub retries_succeeded: u64,
    /// Threads doomed surgically through the per-range reader registry
    /// (counted on the thread whose commit or rollback triggered the
    /// dooming).
    pub targeted_dooms: u64,
    /// Conflict recoveries that fell back to the full squash cascade —
    /// either because the recovery mode is `Cascade` or because the
    /// reader registry overflowed (an untracked rank read the range).
    pub cascade_fallbacks: u64,
    /// Read-set entries that passed validation *precisely* through the
    /// commit log's version rings: the range version had moved, but the
    /// ring footprints proved the commits missed the word (mvcc — at
    /// ring depth 1 this is always zero).
    pub precise_passes: u64,
    /// Unjoined threads of a committed child that were adopted
    /// (validated and committed/absorbed) by this thread instead of
    /// being reaped and re-speculated.
    pub adopted_threads: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
}

impl ThreadCounters {
    /// Record one rollback of the given cause.
    pub fn record_rollback(&mut self, reason: RollbackReason) {
        self.rollbacks += 1;
        self.rollbacks_by_reason[reason.index()] += 1;
    }
}

/// Per-thread accumulated statistics.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Time per phase (only phases actually touched are present; the
    /// BTreeMap keeps serialization order deterministic).
    phases: BTreeMap<Phase, u64>,
    /// Event counters.
    pub counters: ThreadCounters,
}

impl ThreadStats {
    /// New, empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `amount` time units to `phase`.
    pub fn add(&mut self, phase: Phase, amount: u64) {
        *self.phases.entry(phase).or_insert(0) += amount;
    }

    /// Time accumulated in `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.phases.get(&phase).copied().unwrap_or(0)
    }

    /// Total time across all phases (the thread's runtime).
    pub fn total(&self) -> u64 {
        self.phases.values().sum()
    }

    /// Reclassify all useful work as wasted work (called when the thread
    /// rolls back).  Returns the amount moved, so rollback sites can feed
    /// the wasted-cycles metric without re-reading the phase map.
    pub fn mark_work_wasted(&mut self) -> u64 {
        let w = self.get(Phase::Work);
        if w > 0 {
            self.phases.insert(Phase::Work, 0);
            self.add(Phase::WastedWork, w);
        }
        w
    }

    /// Merge another thread's statistics into this one.
    pub fn merge(&mut self, other: &ThreadStats) {
        for (phase, amount) in &other.phases {
            self.add(*phase, *amount);
        }
        self.counters.forks += other.counters.forks;
        self.counters.failed_forks += other.counters.failed_forks;
        self.counters.throttled_forks += other.counters.throttled_forks;
        self.counters.commits += other.counters.commits;
        self.counters.rollbacks += other.counters.rollbacks;
        self.counters.false_sharing_suspects += other.counters.false_sharing_suspects;
        self.counters.retries_succeeded += other.counters.retries_succeeded;
        self.counters.targeted_dooms += other.counters.targeted_dooms;
        self.counters.cascade_fallbacks += other.counters.cascade_fallbacks;
        self.counters.precise_passes += other.counters.precise_passes;
        self.counters.adopted_threads += other.counters.adopted_threads;
        for (mine, theirs) in self
            .counters
            .rollbacks_by_reason
            .iter_mut()
            .zip(other.counters.rollbacks_by_reason)
        {
            *mine += theirs;
        }
        self.counters.loads += other.counters.loads;
        self.counters.stores += other.counters.stores;
    }

    /// Fraction of this thread's runtime spent in `phase` (0 when the
    /// thread has no recorded time).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(phase) as f64 / total as f64
        }
    }
}

/// Aggregated result of one speculative run.
///
/// Serializes deterministically (`serde::Serialize`): two runs with the
/// same seed and configuration on the simulator produce byte-identical
/// JSON, which the determinism tests assert.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Statistics of the non-speculative thread (the critical path).
    pub critical: ThreadStats,
    /// Combined statistics of every speculative thread (the speculative
    /// path).
    pub speculative: ThreadStats,
    /// Number of speculative threads that committed.
    pub committed_threads: u64,
    /// Number of speculative threads that rolled back (any reason).
    pub rolled_back_threads: u64,
    /// Number of speculative threads whose conflict was repaired by
    /// value-predict-and-retry.  These threads **committed** — they are
    /// included in `committed_threads` and deliberately *not* in
    /// `rolled_back_threads` or `rollback_reasons` (a successful retry is
    /// not a rollback).
    pub retried_threads: u64,
    /// Rolled-back threads split by cause, indexed by
    /// [`RollbackReason::index`].
    pub rollback_reasons: [u64; RollbackReason::COUNT],
    /// Wall-clock (or virtual) runtime of the whole region.
    pub runtime: u64,
    /// Per-fork-site profile table gathered by the adaptive governor,
    /// sorted by site ID (empty when no fork point was reached).
    pub sites: Vec<SiteProfile>,
    /// Commit-log activity (batches, range stamps, commit-lock time) —
    /// the sharding/grain cost the `grain` sweep reports.  Simulated runs
    /// fill the batch/stamp counters from their publish model and leave
    /// the wall-clock lock time zero.
    pub commit_log: CommitLogStats,
    /// Census of the live per-region grains at the end of the run:
    /// `(grain_log2, regions)` pairs over touched regions, ascending by
    /// grain — what the adaptive-grain controller converged to (a single
    /// entry at the configured grain when the controller is disabled).
    pub region_grains: Vec<(u32, u64)>,
    /// Per-phase latency quantiles (p50/p99/p999 per log2-bucket
    /// histogram): fork-to-commit, validation, commit-lock wait and the
    /// rollback-repair arms.  Nanoseconds native, virtual cycles
    /// simulated.  Always populated — the histograms stay on even with
    /// event tracing disabled.
    pub latency: LatencyReport,
}

impl RunReport {
    /// Critical path efficiency `η_crit = T_work_nonspec / T_runtime_nonspec`.
    pub fn critical_path_efficiency(&self) -> f64 {
        let total = self.critical.total();
        if total == 0 {
            return 1.0;
        }
        self.critical.get(Phase::Work) as f64 / total as f64
    }

    /// Speculative path efficiency `η_sp = Σ T_work_sp / Σ T_runtime_sp`.
    pub fn speculative_path_efficiency(&self) -> f64 {
        let total = self.speculative.total();
        if total == 0 {
            return 1.0;
        }
        self.speculative.get(Phase::Work) as f64 / total as f64
    }

    /// Parallel execution coverage `C = Σ T_runtime_sp / T_runtime_nonspec`.
    pub fn coverage(&self) -> f64 {
        let crit = self.critical.total();
        if crit == 0 {
            return 0.0;
        }
        self.speculative.total() as f64 / crit as f64
    }

    /// Total work discarded by rollbacks on the speculative path.
    pub fn wasted_work(&self) -> u64 {
        self.speculative.get(Phase::WastedWork)
    }

    /// Rollback amplification: wasted speculative work per unit of work
    /// that survived to commit (`wasted / max(1, useful)`).  The headline
    /// wasted-work-attribution gauge of the metrics plane; 0 means no
    /// speculation was discarded, 1 means every committed cycle paid one
    /// discarded cycle.
    pub fn rollback_amplification(&self) -> f64 {
        self.wasted_work() as f64 / (self.speculative.get(Phase::Work).max(1)) as f64
    }

    /// Rolled-back threads whose cause was `reason`.
    pub fn rollbacks_with(&self, reason: RollbackReason) -> u64 {
        self.rollback_reasons[reason.index()]
    }

    /// Compact `conflict=N overflow=N injected=N other=N` breakdown of the
    /// rolled-back thread count, for report tables and logs.
    pub fn rollback_breakdown(&self) -> String {
        let mut out = String::new();
        for reason in RollbackReason::ALL {
            if !out.is_empty() {
                out.push(' ');
            }
            let _ = write!(out, "{}={}", reason.label(), self.rollbacks_with(reason));
        }
        out
    }

    /// Total fork requests suppressed by the governor, over all sites.
    pub fn throttled_forks(&self) -> u64 {
        self.sites.iter().map(|s| s.throttled).sum()
    }

    /// Conflict rollbacks classified as suspected false sharing (see
    /// [`ThreadCounters::false_sharing_suspects`]).
    pub fn suspected_false_sharing(&self) -> u64 {
        self.speculative.counters.false_sharing_suspects
    }

    /// Successful value-predict retries across both paths (see
    /// [`ThreadCounters::retries_succeeded`]).
    pub fn retries(&self) -> u64 {
        self.critical.counters.retries_succeeded + self.speculative.counters.retries_succeeded
    }

    /// Threads doomed surgically through the reader registry, across both
    /// paths (see [`ThreadCounters::targeted_dooms`]).
    pub fn targeted_dooms(&self) -> u64 {
        self.critical.counters.targeted_dooms + self.speculative.counters.targeted_dooms
    }

    /// Conflict recoveries that used the full squash cascade, across both
    /// paths (see [`ThreadCounters::cascade_fallbacks`]).
    pub fn cascade_fallbacks(&self) -> u64 {
        self.critical.counters.cascade_fallbacks + self.speculative.counters.cascade_fallbacks
    }

    /// Read-set entries that precise-passed through the version rings,
    /// across both paths (see [`ThreadCounters::precise_passes`]).
    pub fn precise_passes(&self) -> u64 {
        self.critical.counters.precise_passes + self.speculative.counters.precise_passes
    }

    /// Committed-subtree adoptions across both paths (see
    /// [`ThreadCounters::adopted_threads`]).
    pub fn adopted_threads(&self) -> u64 {
        self.critical.counters.adopted_threads + self.speculative.counters.adopted_threads
    }

    /// Power efficiency `η_power = T_s / (T_runtime_nonspec + Σ T_runtime_sp)`
    /// given the sequential runtime `sequential` in the same units.
    pub fn power_efficiency(&self, sequential: u64) -> f64 {
        let busy = self.critical.total() + self.speculative.total();
        if busy == 0 {
            return 1.0;
        }
        sequential as f64 / busy as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total() {
        let mut s = ThreadStats::new();
        s.add(Phase::Work, 70);
        s.add(Phase::Idle, 20);
        s.add(Phase::Work, 10);
        assert_eq!(s.get(Phase::Work), 80);
        assert_eq!(s.get(Phase::Join), 0);
        assert_eq!(s.total(), 100);
        assert!((s.fraction(Phase::Work) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn mark_work_wasted_moves_everything() {
        let mut s = ThreadStats::new();
        s.add(Phase::Work, 50);
        s.add(Phase::Validation, 5);
        s.mark_work_wasted();
        assert_eq!(s.get(Phase::Work), 0);
        assert_eq!(s.get(Phase::WastedWork), 50);
        assert_eq!(s.total(), 55);
    }

    #[test]
    fn merge_accumulates_phases_and_counters() {
        let mut a = ThreadStats::new();
        a.add(Phase::Work, 10);
        a.counters.forks = 1;
        let mut b = ThreadStats::new();
        b.add(Phase::Work, 5);
        b.add(Phase::Commit, 2);
        b.counters.forks = 2;
        b.counters.rollbacks = 1;
        a.merge(&b);
        assert_eq!(a.get(Phase::Work), 15);
        assert_eq!(a.get(Phase::Commit), 2);
        assert_eq!(a.counters.forks, 3);
        assert_eq!(a.counters.rollbacks, 1);
    }

    #[test]
    fn report_metrics() {
        let mut report = RunReport::default();
        report.critical.add(Phase::Work, 90);
        report.critical.add(Phase::Idle, 10);
        report.speculative.add(Phase::Work, 150);
        report.speculative.add(Phase::Validation, 25);
        report.speculative.add(Phase::WastedWork, 25);
        assert!((report.critical_path_efficiency() - 0.9).abs() < 1e-12);
        assert!((report.speculative_path_efficiency() - 0.75).abs() < 1e-12);
        assert!((report.coverage() - 2.0).abs() < 1e-12);
        assert!((report.power_efficiency(150) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_well_defined() {
        let report = RunReport::default();
        assert_eq!(report.critical_path_efficiency(), 1.0);
        assert_eq!(report.speculative_path_efficiency(), 1.0);
        assert_eq!(report.coverage(), 0.0);
        assert_eq!(report.power_efficiency(100), 1.0);
    }

    #[test]
    fn rollback_reason_counters_merge_and_render() {
        let mut a = ThreadStats::new();
        a.counters.record_rollback(RollbackReason::Conflict);
        let mut b = ThreadStats::new();
        b.counters.record_rollback(RollbackReason::Conflict);
        b.counters.record_rollback(RollbackReason::Injected);
        a.merge(&b);
        assert_eq!(a.counters.rollbacks, 3);
        assert_eq!(
            a.counters.rollbacks_by_reason[RollbackReason::Conflict.index()],
            2
        );
        let mut report = RunReport::default();
        report.rollback_reasons[RollbackReason::Overflow.index()] = 4;
        assert_eq!(report.rollbacks_with(RollbackReason::Overflow), 4);
        assert_eq!(
            report.rollback_breakdown(),
            "conflict=0 overflow=4 injected=0 other=0"
        );
    }

    #[test]
    fn fraction_of_empty_stats_is_zero() {
        let s = ThreadStats::new();
        assert_eq!(s.fraction(Phase::Work), 0.0);
    }

    #[test]
    fn phase_labels_unique() {
        let labels: std::collections::HashSet<_> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), Phase::ALL.len());
    }

    #[test]
    fn false_sharing_suspects_merge_and_surface() {
        let mut a = ThreadStats::new();
        a.counters.false_sharing_suspects = 2;
        let mut b = ThreadStats::new();
        b.counters.false_sharing_suspects = 3;
        a.merge(&b);
        assert_eq!(a.counters.false_sharing_suspects, 5);
        let report = RunReport {
            speculative: a,
            ..Default::default()
        };
        assert_eq!(report.suspected_false_sharing(), 5);
    }

    #[test]
    fn recovery_counters_merge_and_surface() {
        let mut a = ThreadStats::new();
        a.counters.retries_succeeded = 1;
        a.counters.targeted_dooms = 2;
        let mut b = ThreadStats::new();
        b.counters.retries_succeeded = 3;
        b.counters.cascade_fallbacks = 4;
        a.merge(&b);
        assert_eq!(a.counters.retries_succeeded, 4);
        assert_eq!(a.counters.targeted_dooms, 2);
        assert_eq!(a.counters.cascade_fallbacks, 4);
        let mut report = RunReport {
            speculative: a,
            retried_threads: 4,
            ..Default::default()
        };
        report.critical.counters.targeted_dooms = 5;
        assert_eq!(report.retries(), 4);
        assert_eq!(report.targeted_dooms(), 7);
        assert_eq!(report.cascade_fallbacks(), 4);
        // A retry is not a rollback.
        assert_eq!(report.rolled_back_threads, 0);
    }

    #[test]
    fn run_report_serializes_deterministically() {
        let mut report = RunReport::default();
        report.critical.add(Phase::Work, 90);
        report.speculative.add(Phase::Validation, 7);
        report.committed_threads = 3;
        report.rollback_reasons[RollbackReason::Conflict.index()] = 1;
        let ser = |r: &RunReport| {
            let mut out = String::new();
            r.serialize_json(&mut out);
            out
        };
        let first = ser(&report);
        assert_eq!(first, ser(&report.clone()), "serialization is stable");
        assert!(first.contains("\"committed_threads\":3"));
        assert!(first.contains("\"work\""), "phases serialize by label");
    }

    #[test]
    fn phase_deserializes_from_its_label() {
        for phase in Phase::ALL {
            let mut json = String::new();
            phase.serialize_json(&mut json);
            assert_eq!(serde_json::from_str::<Phase>(&json).unwrap(), phase);
        }
        assert!(serde_json::from_str::<Phase>("\"nonsense\"").is_err());
    }

    #[test]
    fn run_report_round_trips_through_json() {
        let recorder = mutls_trace::LatencyRecorder::new();
        recorder.record(mutls_trace::LatencyPhase::ForkToCommit, 4096);
        recorder.record(mutls_trace::LatencyPhase::Validation, 100);
        recorder.record(mutls_trace::LatencyPhase::Validation, 90);
        let mut report = RunReport {
            committed_threads: 5,
            rolled_back_threads: 2,
            retried_threads: 1,
            runtime: 123_456,
            sites: vec![SiteProfile {
                site: 7,
                forks: 9,
                rollback_rate: 0.25,
                grain_log2: 4,
                ..SiteProfile::default()
            }],
            commit_log: CommitLogStats {
                commits: 11,
                stamp_writes: 40,
                regrains: 2,
                reader_spills: 3,
                grain_log2: 3,
                shards: 8,
                ..CommitLogStats::default()
            },
            region_grains: vec![(3, 12), (6, 2)],
            latency: recorder.report(),
            ..RunReport::default()
        };
        report.critical.add(Phase::Work, 90);
        report.critical.add(Phase::Join, 4);
        report.critical.counters.forks = 5;
        report.speculative.add(Phase::Validation, 7);
        report
            .speculative
            .counters
            .record_rollback(RollbackReason::Conflict);
        report.rollback_reasons[RollbackReason::Conflict.index()] = 2;

        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.latency.total_samples(), 3);
        assert_eq!(
            back.latency
                .row(mutls_trace::LatencyPhase::Validation)
                .unwrap()
                .count,
            2
        );
        assert_eq!(back.critical.get(Phase::Work), 90);
    }
}
