//! Property tests of the metrics plane.
//!
//! * **Registry concurrency**: concurrent increments from real threads
//!   never lose counts — the per-rank sharded cells plus relaxed
//!   `fetch_add` must aggregate to the exact sum on scrape.
//! * **JSON round-trip**: an arbitrary-ish series survives
//!   serialize → parse → deserialize unchanged.

use proptest::prelude::*;

use mutls_metrics::{
    CounterId, GaugeId, HistId, HistogramSnapshot, LabeledGauge, MetricsConfig, MetricsSeries,
    MetricsSnapshot, Registry, ScrapeExtras,
};
use serde::Deserialize;

proptest! {
    /// Concurrent increments from `threads` real OS threads, each adding
    /// `per_thread` times to its own rank (plus a histogram observation
    /// and a gauge bump), never lose a count.
    #[test]
    fn concurrent_increments_never_lose_counts(
        threads in 1usize..8,
        per_thread in 1u64..300,
        amount in 1u64..5,
    ) {
        let registry = Registry::new(MetricsConfig::enabled(), threads);
        std::thread::scope(|scope| {
            for rank in 0..threads {
                let registry = &registry;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        registry.add(rank, CounterId::Commits, amount);
                        // Hammer one shared counter from every thread too:
                        // cross-shard aggregation must still be exact.
                        registry.add_unranked(CounterId::Rollbacks, 1);
                        registry.observe(HistId::ThreadCycles, i);
                        registry.gauge_add(GaugeId::InFlightSpeculations, 1);
                        registry.gauge_add(GaugeId::InFlightSpeculations, -1);
                    }
                });
            }
        });
        let expected = threads as u64 * per_thread;
        prop_assert_eq!(registry.counter_total(CounterId::Commits), expected * amount);
        prop_assert_eq!(registry.counter_total(CounterId::Rollbacks), expected);
        prop_assert_eq!(registry.gauge_value(GaugeId::InFlightSpeculations), 0);
        let snap = registry.scrape(0, ScrapeExtras::default());
        prop_assert_eq!(snap.counter("commits"), Some(expected * amount));
        prop_assert_eq!(snap.histograms[0].count, expected);
    }

    /// The JSON time-series dump round-trips: serialize, parse with the
    /// workspace serde_json, deserialize, compare.
    #[test]
    fn json_series_round_trips(
        samples in 0usize..5,
        // The vendored serde stores JSON numbers as f64, exact for
        // |x| <= 2^53 — stay inside the exact range.
        counter in 0u64..(1 << 53),
        bucket in 0u64..(1 << 52),
        gauge_millis in 0u64..1_000_000,
    ) {
        let mut series = MetricsSeries::new(8);
        for ts in 0..samples as u64 {
            series.push(MetricsSnapshot {
                ts,
                counters: vec![("commits".to_string(), counter), ("log_stamps".to_string(), ts)],
                gauges: vec![("rollback_amplification".to_string(), gauge_millis as f64 / 1000.0)],
                histograms: vec![HistogramSnapshot {
                    name: "thread_cycles".to_string(),
                    count: 2,
                    buckets: vec![1, bucket, 1],
                }],
                labeled: vec![LabeledGauge::new("phase_share", "phase", "va\"l\\ue", 0.5)],
            });
        }
        let json = series.to_json();
        let parsed = serde_json::parse(&json).expect("series JSON parses");
        let back = MetricsSeries::deserialize(&parsed).expect("series deserializes");
        prop_assert_eq!(back, series);
    }
}
