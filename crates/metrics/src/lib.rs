//! Live telemetry plane for the MUTLS runtime and simulator.
//!
//! `RunReport` only exists after a run completes and the flight recorder
//! (`mutls-trace`) only yields post-mortem event dumps; this crate is the
//! *live* view: a lock-free [`Registry`] of counters, gauges and
//! log2-bucket histograms, a background [`Sampler`]
//! thread that snapshots the registry on a configurable cadence into a
//! bounded in-memory time series, and two exporters — Prometheus text
//! exposition ([`export::PromWriter`]) and a JSON time-series dump
//! ([`MetricsSeries`] round-trips through serde).
//!
//! # Hot-path discipline
//!
//! The registry mirrors the `TraceConfig` one-branch no-op contract:
//! with [`MetricsConfig::enabled`] off (the default) every
//! [`Registry::add`] / [`Registry::observe`] / [`Registry::gauge_add`]
//! call is a single predictable branch — no atomics are touched, nothing
//! about speculation behaviour or accounting may change (the
//! `metrics_overhead` bench holds the disabled path to the committed
//! `BENCH_PR8.json` trajectory counter-for-counter).  When enabled,
//! counters are **per-thread sharded cells**: each rank increments its
//! own cache-line-aligned cell with a relaxed `fetch_add` and the shards
//! are only summed on scrape, so the hot path never contends.
//!
//! # Derived gauges
//!
//! Every scrape computes three derived gauges from the counter totals:
//!
//! * **rollback amplification** = `wasted_cycles / max(1, committed_cycles)`
//!   — the TLP survey's headline efficiency cost: how much speculative
//!   work is thrown away per unit of work that commits.
//! * **speculation success rate** = `commits / max(1, commits + rollbacks)`.
//! * **precise-pass fraction** = `precise_passes / max(1, commits)` — how
//!   often MVCC precise validation cleared a range conflict.
//!
//! Phase attribution (useful commit vs validation vs repair vs
//! commit-lock/CAS wall share) rides along as labeled gauges built by the
//! scraping layer from the existing latency histograms (see
//! [`phase_share_gauges`]).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use parking_lot::Mutex;

mod export;
mod sampler;
mod snapshot;

pub use export::{prometheus_text, PromWriter};
pub use sampler::Sampler;
pub use snapshot::{HistogramSnapshot, LabeledGauge, MetricsSeries, MetricsSnapshot, ScrapeExtras};

/// Metrics configuration, carried by value in `RuntimeConfig` /
/// `SimConfig` (hence `Copy`).  Disabled by default: the registry is a
/// one-branch no-op and no sampler thread is spawned.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricsConfig {
    /// Master switch.  Off = zero atomics on the hot path.
    pub enabled: bool,
    /// Native sampler cadence in milliseconds.  `0` disables the
    /// background thread — the registry still counts and can be scraped
    /// on demand (`Runtime::metrics_snapshot`).
    pub sample_interval_ms: u64,
    /// Simulator sampler cadence in **virtual cycles**.  The simulator
    /// mirrors the sampler deterministically off the virtual clock:
    /// sample ticks land at exact multiples of this cadence, so the
    /// series is byte-identical at any `sim_threads` / shard policy.
    /// `0` keeps only the final end-of-run snapshot.
    pub sim_cadence_cycles: u64,
    /// Bound on the in-memory time series; the oldest samples are
    /// dropped (and counted) once it fills.
    pub series_capacity: usize,
}

impl MetricsConfig {
    /// The standard enabled preset: 5 ms native cadence, 50 000
    /// virtual-cycle simulator cadence, 1024-sample series.
    pub fn enabled() -> Self {
        MetricsConfig {
            enabled: true,
            sample_interval_ms: 5,
            sim_cadence_cycles: 50_000,
            series_capacity: 1024,
        }
    }

    /// Set the native sampler cadence (builder style).
    pub fn sample_interval_ms(mut self, ms: u64) -> Self {
        self.sample_interval_ms = ms;
        self
    }

    /// Set the simulator virtual-cycle cadence (builder style).
    pub fn sim_cadence_cycles(mut self, cycles: u64) -> Self {
        self.sim_cadence_cycles = cycles;
        self
    }

    /// Set the time-series capacity (builder style).
    pub fn series_capacity(mut self, capacity: usize) -> Self {
        self.series_capacity = capacity;
        self
    }
}

/// Statically known monotone counters.  Scrapes emit them in declaration
/// order, so native and simulated snapshots agree on name ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum CounterId {
    /// Speculative threads launched.
    Forks,
    /// Fork requests that found no idle CPU (or were denied by the model).
    FailedForks,
    /// Fork requests suppressed by the governor.
    ThrottledForks,
    /// Speculative threads that committed.
    Commits,
    /// Speculative threads discarded (all causes).
    Rollbacks,
    /// Rollbacks caused by a genuine dependence violation.
    RollbacksConflict,
    /// Rollbacks caused by speculative-buffer overflow.
    RollbacksOverflow,
    /// Rollbacks injected by the sensitivity experiment.
    RollbacksInjected,
    /// Cascades, order violations and other rollbacks.
    RollbacksOther,
    /// Commits repaired by value-predict-and-retry.
    Retries,
    /// Readers doomed surgically by a committing writer.
    TargetedDooms,
    /// Repairs that fell back to a squash cascade.
    CascadeFallbacks,
    /// MVCC precise validation passes.
    PrecisePasses,
    /// Unjoined children adopted by a committing parent.
    AdoptedThreads,
    /// Conflicts classified as suspected false sharing.
    FalseSharingSuspects,
    /// Work cycles discarded by rollbacks (ns native / virtual cycles
    /// replay).
    WastedCycles,
    /// Speculative work cycles that committed.
    CommittedCycles,
}

impl CounterId {
    /// Every counter, in scrape order.
    pub const ALL: [CounterId; 17] = [
        CounterId::Forks,
        CounterId::FailedForks,
        CounterId::ThrottledForks,
        CounterId::Commits,
        CounterId::Rollbacks,
        CounterId::RollbacksConflict,
        CounterId::RollbacksOverflow,
        CounterId::RollbacksInjected,
        CounterId::RollbacksOther,
        CounterId::Retries,
        CounterId::TargetedDooms,
        CounterId::CascadeFallbacks,
        CounterId::PrecisePasses,
        CounterId::AdoptedThreads,
        CounterId::FalseSharingSuspects,
        CounterId::WastedCycles,
        CounterId::CommittedCycles,
    ];

    /// Number of counters.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name (the Prometheus name is
    /// `mutls_<name>_total`).
    pub fn name(self) -> &'static str {
        match self {
            CounterId::Forks => "forks",
            CounterId::FailedForks => "failed_forks",
            CounterId::ThrottledForks => "throttled_forks",
            CounterId::Commits => "commits",
            CounterId::Rollbacks => "rollbacks",
            CounterId::RollbacksConflict => "rollbacks_conflict",
            CounterId::RollbacksOverflow => "rollbacks_overflow",
            CounterId::RollbacksInjected => "rollbacks_injected",
            CounterId::RollbacksOther => "rollbacks_other",
            CounterId::Retries => "retries",
            CounterId::TargetedDooms => "targeted_dooms",
            CounterId::CascadeFallbacks => "cascade_fallbacks",
            CounterId::PrecisePasses => "precise_passes",
            CounterId::AdoptedThreads => "adopted_threads",
            CounterId::FalseSharingSuspects => "false_sharing_suspects",
            CounterId::WastedCycles => "wasted_cycles",
            CounterId::CommittedCycles => "committed_cycles",
        }
    }

    /// One-line help string for the Prometheus `# HELP` line.
    pub fn help(self) -> &'static str {
        match self {
            CounterId::Forks => "Speculative threads launched",
            CounterId::FailedForks => "Fork requests denied by the model or CPU exhaustion",
            CounterId::ThrottledForks => "Fork requests suppressed by the governor",
            CounterId::Commits => "Speculative threads committed",
            CounterId::Rollbacks => "Speculative threads discarded (all causes)",
            CounterId::RollbacksConflict => "Rollbacks: genuine dependence violations",
            CounterId::RollbacksOverflow => "Rollbacks: speculative buffer overflow",
            CounterId::RollbacksInjected => "Rollbacks: injected by the sensitivity experiment",
            CounterId::RollbacksOther => "Rollbacks: cascades and order violations",
            CounterId::Retries => "Commits repaired by value-predict-and-retry",
            CounterId::TargetedDooms => "Readers doomed surgically by committing writers",
            CounterId::CascadeFallbacks => "Repairs that fell back to a squash cascade",
            CounterId::PrecisePasses => "MVCC precise validation passes",
            CounterId::AdoptedThreads => "Unjoined children adopted by committing parents",
            CounterId::FalseSharingSuspects => "Conflicts classified as suspected false sharing",
            CounterId::WastedCycles => "Work discarded by rollbacks (ns native, cycles replay)",
            CounterId::CommittedCycles => {
                "Speculative work that committed (ns native, cycles replay)"
            }
        }
    }

    /// The rollback counter for a `RollbackReason` index (the membuf
    /// declaration order: conflict, overflow, injected, other).
    pub fn rollback_reason(index: usize) -> CounterId {
        match index {
            0 => CounterId::RollbacksConflict,
            1 => CounterId::RollbacksOverflow,
            2 => CounterId::RollbacksInjected,
            _ => CounterId::RollbacksOther,
        }
    }
}

/// Statically known gauges (instantaneous values; derived gauges are
/// computed at scrape time and are not listed here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum GaugeId {
    /// Speculative threads currently in flight.
    InFlightSpeculations,
}

impl GaugeId {
    /// Every gauge, in scrape order.
    pub const ALL: [GaugeId; 1] = [GaugeId::InFlightSpeculations];

    /// Number of gauges.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name (the Prometheus name is `mutls_<name>`).
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::InFlightSpeculations => "in_flight_speculations",
        }
    }

    /// One-line help string.
    pub fn help(self) -> &'static str {
        match self {
            GaugeId::InFlightSpeculations => "Speculative threads currently in flight",
        }
    }
}

/// Statically known log2-bucket histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistId {
    /// Total cycles (ns native / virtual cycles replay) per retired
    /// speculative thread.
    ThreadCycles,
    /// Wasted cycles per rolled-back thread.
    RollbackWastedCycles,
}

impl HistId {
    /// Every histogram, in scrape order.
    pub const ALL: [HistId; 2] = [HistId::ThreadCycles, HistId::RollbackWastedCycles];

    /// Number of histograms.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            HistId::ThreadCycles => "thread_cycles",
            HistId::RollbackWastedCycles => "rollback_wasted_cycles",
        }
    }

    /// One-line help string.
    pub fn help(self) -> &'static str {
        match self {
            HistId::ThreadCycles => "Cycles per retired speculative thread (log2 buckets)",
            HistId::RollbackWastedCycles => "Wasted cycles per rolled-back thread (log2 buckets)",
        }
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `k >= 1`
/// holds values whose highest set bit is `k - 1` (i.e. `v in
/// [2^(k-1), 2^k - 1]`), up to `u64::MAX` in bucket 64.
pub const HIST_BUCKETS: usize = (u64::BITS + 1) as usize;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// A lock-free log2-bucket histogram (relaxed atomic increments).
#[derive(Debug)]
struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    fn observe(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self, id: HistId) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) && buckets.len() > 1 {
            buckets.pop();
        }
        let count = buckets.iter().sum();
        HistogramSnapshot {
            name: id.name().to_string(),
            count,
            buckets,
        }
    }

    fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

/// One rank's counter cells, padded to a cache line boundary so two
/// ranks' increments never share a line.
#[repr(align(128))]
#[derive(Debug)]
struct CounterShard {
    cells: [AtomicU64; CounterId::COUNT],
}

impl CounterShard {
    fn new() -> Self {
        CounterShard {
            cells: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The lock-free metrics registry: per-rank sharded counters, shared
/// gauges and log2-bucket histograms.  All write paths are a single
/// branch when disabled; when enabled they are relaxed atomic ops on the
/// caller's own shard (counters) or a shared cell (gauges, histograms).
#[derive(Debug)]
pub struct Registry {
    enabled: bool,
    /// One shard per rank plus a trailing *control* shard for callers
    /// without a rank (manager-side accounting, tests).
    shards: Box<[CounterShard]>,
    gauges: [AtomicI64; GaugeId::COUNT],
    hists: [Histogram; HistId::COUNT],
}

impl Registry {
    /// A registry with `ranks` counter shards (plus the control shard).
    /// Disabled registries allocate the minimum single shard.
    pub fn new(config: MetricsConfig, ranks: usize) -> Self {
        let shard_count = if config.enabled { ranks.max(1) + 1 } else { 1 };
        Registry {
            enabled: config.enabled,
            shards: (0..shard_count).map(|_| CounterShard::new()).collect(),
            gauges: std::array::from_fn(|_| AtomicI64::new(0)),
            hists: std::array::from_fn(|i| {
                let _ = i;
                Histogram::new()
            }),
        }
    }

    /// Whether the registry is recording (one branch — the whole
    /// disabled-mode cost).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Add `n` to a counter on `rank`'s shard (relaxed; ranks beyond the
    /// shard table and unranked callers share the control shard).
    #[inline]
    pub fn add(&self, rank: usize, id: CounterId, n: u64) {
        if !self.enabled {
            return;
        }
        let shard = rank.min(self.shards.len() - 1);
        self.shards[shard].cells[id as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` to a counter on the control shard (callers without a
    /// rank).
    #[inline]
    pub fn add_unranked(&self, id: CounterId, n: u64) {
        self.add(usize::MAX, id, n);
    }

    /// Adjust a gauge by `delta` (relaxed; shared cell).
    #[inline]
    pub fn gauge_add(&self, id: GaugeId, delta: i64) {
        if !self.enabled {
            return;
        }
        self.gauges[id as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Record one histogram observation.
    #[inline]
    pub fn observe(&self, id: HistId, value: u64) {
        if !self.enabled {
            return;
        }
        self.hists[id as usize].observe(value);
    }

    /// The current total of a counter across all shards.
    pub fn counter_total(&self, id: CounterId) -> u64 {
        self.shards
            .iter()
            .map(|s| s.cells[id as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// The current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> i64 {
        self.gauges[id as usize].load(Ordering::Relaxed)
    }

    /// Zero every counter, gauge and histogram (run boundaries).
    pub fn reset(&self) {
        for shard in self.shards.iter() {
            for cell in &shard.cells {
                cell.store(0, Ordering::Relaxed);
            }
        }
        for gauge in &self.gauges {
            gauge.store(0, Ordering::Relaxed);
        }
        for hist in &self.hists {
            hist.reset();
        }
    }

    /// Aggregate the registry (plus caller-supplied pulls) into one
    /// [`MetricsSnapshot`] stamped `ts`, computing the derived gauges
    /// from the final counter values.  See [`ScrapeExtras`] for the
    /// override semantics that let the deterministic simulator reuse
    /// this exact path.
    pub fn scrape(&self, ts: u64, extras: ScrapeExtras) -> MetricsSnapshot {
        let counter_of = |id: CounterId| {
            extras
                .counter_overrides
                .iter()
                .find(|(o, _)| *o == id)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| self.counter_total(id))
        };
        let mut counters: Vec<(String, u64)> = CounterId::ALL
            .iter()
            .map(|&id| (id.name().to_string(), counter_of(id)))
            .collect();
        counters.extend(extras.extra_counters);

        let mut gauges: Vec<(String, f64)> = GaugeId::ALL
            .iter()
            .map(|&id| {
                let value = extras
                    .gauge_overrides
                    .iter()
                    .find(|(o, _)| *o == id)
                    .map(|&(_, v)| v)
                    .unwrap_or_else(|| self.gauge_value(id) as f64);
                (id.name().to_string(), value)
            })
            .collect();
        let commits = counter_of(CounterId::Commits);
        let rollbacks = counter_of(CounterId::Rollbacks);
        gauges.push((
            "rollback_amplification".to_string(),
            counter_of(CounterId::WastedCycles) as f64
                / counter_of(CounterId::CommittedCycles).max(1) as f64,
        ));
        gauges.push((
            "speculation_success_rate".to_string(),
            commits as f64 / (commits + rollbacks).max(1) as f64,
        ));
        gauges.push((
            "precise_pass_fraction".to_string(),
            counter_of(CounterId::PrecisePasses) as f64 / commits.max(1) as f64,
        ));
        gauges.extend(extras.extra_gauges);

        let histograms = HistId::ALL
            .iter()
            .map(|&id| self.hists[id as usize].snapshot(id))
            .collect();

        MetricsSnapshot {
            ts,
            counters,
            gauges,
            histograms,
            labeled: extras.labeled,
        }
    }
}

/// Shared native-runtime metrics state: the registry plus the bounded
/// time series the sampler thread appends to.  Constructed by the
/// `ThreadManager`, shared with the `Runtime`'s sampler.
#[derive(Debug)]
pub struct MetricsHub {
    config: MetricsConfig,
    registry: Registry,
    series: Mutex<MetricsSeries>,
}

impl MetricsHub {
    /// A hub for `ranks` worker shards under `config`.
    pub fn new(config: MetricsConfig, ranks: usize) -> Self {
        MetricsHub {
            config,
            registry: Registry::new(config, ranks),
            series: Mutex::new(MetricsSeries::new(config.series_capacity)),
        }
    }

    /// The configuration the hub was built with.
    pub fn config(&self) -> MetricsConfig {
        self.config
    }

    /// The lock-free registry (feed + scrape surface).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Append one snapshot to the bounded time series.
    pub fn push(&self, snapshot: MetricsSnapshot) {
        self.series.lock().push(snapshot);
    }

    /// A clone of the time series captured so far.
    pub fn series(&self) -> MetricsSeries {
        self.series.lock().clone()
    }

    /// Clear the registry and the series (run boundaries).
    pub fn reset(&self) {
        self.registry.reset();
        self.series.lock().clear();
    }
}

/// Build the phase-attribution labeled gauges from per-phase approximate
/// cycle totals (`Σ bucket_count × bucket_floor` over a latency
/// histogram): each phase's share of the summed wall across all phases.
/// Returns one `phase_share{phase="..."}` gauge per phase, in input
/// order, plus nothing when every total is zero.
pub fn phase_share_gauges(totals: &[(&str, u64)]) -> Vec<LabeledGauge> {
    let sum: u64 = totals.iter().map(|&(_, t)| t).sum();
    if sum == 0 {
        return Vec::new();
    }
    totals
        .iter()
        .map(|&(phase, total)| LabeledGauge {
            name: "phase_share".to_string(),
            labels: vec![("phase".to_string(), phase.to_string())],
            value: total as f64 / sum as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::new(MetricsConfig::default(), 8);
        reg.add(3, CounterId::Commits, 5);
        reg.gauge_add(GaugeId::InFlightSpeculations, 2);
        reg.observe(HistId::ThreadCycles, 100);
        assert_eq!(reg.counter_total(CounterId::Commits), 0);
        assert_eq!(reg.gauge_value(GaugeId::InFlightSpeculations), 0);
        let snap = reg.scrape(0, ScrapeExtras::default());
        assert!(snap.histograms.iter().all(|h| h.count == 0));
    }

    #[test]
    fn sharded_counters_aggregate_on_scrape() {
        let reg = Registry::new(MetricsConfig::enabled(), 4);
        for rank in 0..6 {
            reg.add(rank, CounterId::Forks, 2);
        }
        // Ranks beyond the shard table land on the control shard; all 12
        // increments survive.
        assert_eq!(reg.counter_total(CounterId::Forks), 12);
        reg.add_unranked(CounterId::Forks, 1);
        assert_eq!(reg.counter_total(CounterId::Forks), 13);
    }

    #[test]
    fn derived_gauges_follow_the_documented_formulas() {
        let reg = Registry::new(MetricsConfig::enabled(), 1);
        reg.add(0, CounterId::Commits, 3);
        reg.add(0, CounterId::Rollbacks, 1);
        reg.add(0, CounterId::WastedCycles, 500);
        reg.add(0, CounterId::CommittedCycles, 1000);
        reg.add(0, CounterId::PrecisePasses, 6);
        let snap = reg.scrape(7, ScrapeExtras::default());
        assert_eq!(snap.gauge("rollback_amplification"), Some(0.5));
        assert_eq!(snap.gauge("speculation_success_rate"), Some(0.75));
        assert_eq!(snap.gauge("precise_pass_fraction"), Some(2.0));
        assert_eq!(snap.ts, 7);
    }

    #[test]
    fn overrides_replace_registry_totals() {
        let reg = Registry::new(MetricsConfig::enabled(), 1);
        reg.add(0, CounterId::Commits, 9);
        let snap = reg.scrape(
            0,
            ScrapeExtras {
                counter_overrides: vec![(CounterId::Commits, 2)],
                ..ScrapeExtras::default()
            },
        );
        assert_eq!(snap.counter("commits"), Some(2));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        let reg = Registry::new(MetricsConfig::enabled(), 1);
        reg.observe(HistId::ThreadCycles, 3);
        reg.observe(HistId::ThreadCycles, 3);
        reg.observe(HistId::ThreadCycles, 1024);
        let snap = reg.scrape(0, ScrapeExtras::default());
        let hist = &snap.histograms[0];
        assert_eq!(hist.name, "thread_cycles");
        assert_eq!(hist.count, 3);
        assert_eq!(hist.buckets[2], 2);
        assert_eq!(hist.buckets[11], 1);
        assert_eq!(hist.buckets.len(), 12, "trailing zero buckets trimmed");
    }

    #[test]
    fn phase_shares_sum_to_one() {
        let gauges = phase_share_gauges(&[("validation", 300), ("commit", 700)]);
        assert_eq!(gauges.len(), 2);
        assert_eq!(gauges[0].value, 0.3);
        assert_eq!(gauges[1].value, 0.7);
        assert!(phase_share_gauges(&[("validation", 0)]).is_empty());
    }

    #[test]
    fn reset_zeroes_everything() {
        let hub = MetricsHub::new(MetricsConfig::enabled(), 2);
        hub.registry().add(1, CounterId::Forks, 4);
        hub.registry().observe(HistId::ThreadCycles, 8);
        hub.push(hub.registry().scrape(1, ScrapeExtras::default()));
        hub.reset();
        assert_eq!(hub.registry().counter_total(CounterId::Forks), 0);
        assert!(hub.series().samples.is_empty());
    }
}
