//! The background sampler: a thread that invokes a scrape closure on a
//! fixed cadence until stopped.
//!
//! The closure owns the whole scrape (aggregate the registry, pull the
//! commit-log / governor / latency state, push into the series) so the
//! sampler itself stays dependency-free.  `Runtime` spawns one when
//! metrics are enabled with a non-zero interval and stops it on drop —
//! stopping is synchronous (notify + join), so no scrape can observe a
//! torn-down runtime.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

#[derive(Default)]
struct StopFlag {
    stopped: Mutex<bool>,
    cv: Condvar,
}

/// Handle to a running sampler thread.  Dropping it stops and joins the
/// thread.
pub struct Sampler {
    stop: Arc<StopFlag>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl Sampler {
    /// Spawn a sampler invoking `scrape` every `interval` until
    /// [`Sampler::stop`] (or drop).  The first tick fires after one full
    /// interval; a zero interval is floored to 1 ms.
    pub fn spawn(interval: Duration, mut scrape: impl FnMut() + Send + 'static) -> Sampler {
        let interval = interval.max(Duration::from_millis(1));
        let stop = Arc::new(StopFlag::default());
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mutls-metrics-sampler".to_string())
            .spawn(move || loop {
                {
                    let mut stopped = thread_stop.stopped.lock();
                    if *stopped {
                        return;
                    }
                    // A notified (non-timeout) wake means stop.
                    if !thread_stop.cv.wait_for(&mut stopped, interval) || *stopped {
                        return;
                    }
                }
                scrape();
            })
            .expect("spawn metrics sampler");
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the sampler and join its thread (idempotent).
    pub fn stop(&mut self) {
        *self.stop.stopped.lock() = true;
        self.stop.cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn sampler_ticks_then_stops() {
        let ticks = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&ticks);
        let mut sampler = Sampler::spawn(Duration::from_millis(2), move || {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        while ticks.load(Ordering::Relaxed) < 2 {
            std::thread::yield_now();
        }
        sampler.stop();
        let after_stop = ticks.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(ticks.load(Ordering::Relaxed), after_stop);
    }

    #[test]
    fn drop_stops_quickly_even_with_long_interval() {
        let started = std::time::Instant::now();
        let sampler = Sampler::spawn(Duration::from_secs(60), || {});
        drop(sampler);
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
