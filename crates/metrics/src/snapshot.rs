//! Scrape products: one aggregated [`MetricsSnapshot`] per sample tick,
//! collected into a bounded [`MetricsSeries`].
//!
//! Both types round-trip through the workspace serde (derive
//! `Serialize` + `Deserialize`), which is what the JSON time-series
//! exporter writes and what the round-trip tests parse back.

use serde::{Deserialize, Serialize};

use crate::{CounterId, GaugeId};

/// A gauge with free-form labels (per-site throttle state, per-region
/// grain census, phase attribution, Time Warp shard counters...).
/// Label values are escaped by the Prometheus exporter, not here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledGauge {
    /// Metric name without the `mutls_` prefix (e.g. `site_rollback_rate`).
    pub name: String,
    /// Label key/value pairs, in emission order.
    pub labels: Vec<(String, String)>,
    /// The gauge value.
    pub value: f64,
}

impl LabeledGauge {
    /// Convenience constructor for a single-label gauge.
    pub fn new(
        name: impl Into<String>,
        key: impl Into<String>,
        label: impl Into<String>,
        value: f64,
    ) -> Self {
        LabeledGauge {
            name: name.into(),
            labels: vec![(key.into(), label.into())],
            value,
        }
    }
}

/// One histogram's state at scrape time: log2 buckets with the trailing
/// zero run trimmed (bucket `k >= 1` holds values in `[2^(k-1), 2^k-1]`,
/// bucket 0 holds the value 0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name without the `mutls_` prefix.
    pub name: String,
    /// Total observations (the sum of `buckets`).
    pub count: u64,
    /// Per-bucket observation counts.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Approximate sum of all observations: `Σ count × bucket_floor`
    /// (floors are powers of two, so this is a lower bound within 2×).
    pub fn approx_sum(&self) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .map(|(k, &c)| if k == 0 { 0 } else { c << (k - 1) })
            .sum()
    }
}

/// Caller-supplied scrape inputs that the registry cannot know itself.
///
/// * `counter_overrides` / `gauge_overrides` **replace** the registry's
///   own total for that id.  The deterministic simulator pulls its
///   accounting from the single-threaded scheduler state and overrides
///   everything it owns, so its snapshots flow through the exact same
///   naming/ordering/derivation path as the native runtime's.
/// * `extra_counters` / `extra_gauges` are appended after the static
///   ids (commit-log pulls such as `log_stamps`, `log_cas_retries`).
/// * `labeled` carries the per-site / per-region / per-phase gauges.
#[derive(Debug, Clone, Default)]
pub struct ScrapeExtras {
    /// Replacements for static counters (simulator pulls).
    pub counter_overrides: Vec<(CounterId, u64)>,
    /// Appended free-form counters (cumulative, monotone).
    pub extra_counters: Vec<(String, u64)>,
    /// Replacements for static gauges.
    pub gauge_overrides: Vec<(GaugeId, f64)>,
    /// Appended free-form gauges.
    pub extra_gauges: Vec<(String, f64)>,
    /// Labeled gauges (sites, regions, phases, shards).
    pub labeled: Vec<LabeledGauge>,
}

/// One aggregated view of every metric at a single timestamp (`ts` is
/// nanoseconds since run start natively, virtual cycles in the replay).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Sample timestamp.
    pub ts: u64,
    /// Counter totals, static ids first (in [`CounterId::ALL`] order),
    /// then the scrape's extra counters.
    pub counters: Vec<(String, u64)>,
    /// Gauges: static ids, then the derived gauges
    /// (`rollback_amplification`, `speculation_success_rate`,
    /// `precise_pass_fraction`), then the scrape's extra gauges.
    pub gauges: Vec<(String, f64)>,
    /// Histogram states.
    pub histograms: Vec<HistogramSnapshot>,
    /// Labeled gauges.
    pub labeled: Vec<LabeledGauge>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// A bounded in-memory time series of snapshots: pushing past
/// `capacity` drops the oldest sample and counts it, so a long-running
/// service holds a recent-complete window at fixed memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSeries {
    /// Maximum retained samples (0 = unbounded).
    pub capacity: usize,
    /// Samples dropped after the series filled.
    pub dropped: u64,
    /// Retained samples, oldest first.
    pub samples: Vec<MetricsSnapshot>,
}

impl MetricsSeries {
    /// An empty series with the given capacity (0 = unbounded).
    pub fn new(capacity: usize) -> Self {
        MetricsSeries {
            capacity,
            dropped: 0,
            samples: Vec::new(),
        }
    }

    /// Append a snapshot, evicting the oldest once full.
    pub fn push(&mut self, snapshot: MetricsSnapshot) {
        if self.capacity > 0 && self.samples.len() >= self.capacity {
            self.samples.remove(0);
            self.dropped += 1;
        }
        self.samples.push(snapshot);
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<&MetricsSnapshot> {
        self.samples.last()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Drop every sample (run boundaries).
    pub fn clear(&mut self) {
        self.samples.clear();
        self.dropped = 0;
    }

    /// The series as one JSON document (the `--metrics <path>.json`
    /// exporter payload; round-trips through `serde_json::parse` +
    /// `Deserialize`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.serialize_json(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(ts: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            ts,
            counters: vec![("commits".to_string(), ts)],
            gauges: vec![("rollback_amplification".to_string(), 0.5)],
            histograms: vec![HistogramSnapshot {
                name: "thread_cycles".to_string(),
                count: 2,
                buckets: vec![0, 1, 1],
            }],
            labeled: vec![LabeledGauge::new(
                "phase_share",
                "phase",
                "validation",
                0.25,
            )],
        }
    }

    #[test]
    fn bounded_series_drops_oldest() {
        let mut series = MetricsSeries::new(2);
        series.push(snap(1));
        series.push(snap(2));
        series.push(snap(3));
        assert_eq!(series.len(), 2);
        assert_eq!(series.dropped, 1);
        assert_eq!(series.samples[0].ts, 2);
        assert_eq!(series.latest().unwrap().ts, 3);
    }

    #[test]
    fn approx_sum_uses_bucket_floors() {
        let hist = HistogramSnapshot {
            name: "h".to_string(),
            count: 3,
            // One zero, one value in [2,3], one in [4,7].
            buckets: vec![1, 0, 1, 1],
        };
        assert_eq!(hist.approx_sum(), 2 + 4);
    }
}
