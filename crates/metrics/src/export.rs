//! Exporters: Prometheus text exposition format.
//!
//! (The JSON time-series exporter is [`MetricsSeries::to_json`] — the
//! snapshot types serialize directly.)
//!
//! [`MetricsSeries::to_json`]: crate::MetricsSeries::to_json

use std::collections::BTreeSet;

use crate::{CounterId, GaugeId, HistId, MetricsSnapshot};

/// Every exported metric name carries this prefix.
pub const PROM_PREFIX: &str = "mutls_";

/// Escape a label value per the Prometheus text format: backslash,
/// double quote and newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escape a `# HELP` text: backslash and newline.
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render a label set `{k="v",...}` (empty string when no labels).
fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        out.push_str(&escape_label(value));
        out.push('"');
    }
    out.push('}');
    out
}

/// Incremental Prometheus text writer.  `# HELP` / `# TYPE` headers are
/// emitted once per metric name across every appended snapshot, so a
/// multi-run export (one snapshot per run, distinguished by a `run`
/// label) is still a valid single exposition.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
    seen: BTreeSet<String>,
}

impl PromWriter {
    /// An empty writer.
    pub fn new() -> Self {
        PromWriter::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        if self.seen.insert(name.to_string()) {
            self.out
                .push_str(&format!("# HELP {name} {}\n", escape_help(help)));
            self.out.push_str(&format!("# TYPE {name} {kind}\n"));
        }
    }

    /// Append one snapshot under `base_labels` (e.g.
    /// `[("run", "native/conflict_chain")]`).
    pub fn append(&mut self, snapshot: &MetricsSnapshot, base_labels: &[(String, String)]) {
        let base = label_block(base_labels);

        for (name, value) in &snapshot.counters {
            let full = format!("{PROM_PREFIX}{name}_total");
            let help = CounterId::ALL
                .iter()
                .find(|id| id.name() == name)
                .map(|id| id.help().to_string())
                .unwrap_or_else(|| format!("Scraped counter {name}"));
            self.header(&full, &help, "counter");
            self.out.push_str(&format!("{full}{base} {value}\n"));
        }

        for (name, value) in &snapshot.gauges {
            let full = format!("{PROM_PREFIX}{name}");
            let help = GaugeId::ALL
                .iter()
                .find(|id| id.name() == name)
                .map(|id| id.help().to_string())
                .unwrap_or_else(|| match name.as_str() {
                    "rollback_amplification" => {
                        "Derived: wasted_cycles / max(1, committed_cycles)".to_string()
                    }
                    "speculation_success_rate" => {
                        "Derived: commits / max(1, commits + rollbacks)".to_string()
                    }
                    "precise_pass_fraction" => {
                        "Derived: precise_passes / max(1, commits)".to_string()
                    }
                    _ => format!("Scraped gauge {name}"),
                });
            self.header(&full, &help, "gauge");
            self.out.push_str(&format!("{full}{base} {value}\n"));
        }

        for hist in &snapshot.histograms {
            let full = format!("{PROM_PREFIX}{}", hist.name);
            let help = HistId::ALL
                .iter()
                .find(|id| id.name() == hist.name)
                .map(|id| id.help())
                .unwrap_or("Log2-bucket histogram");
            self.header(
                &full,
                &format!("{help} (sum approximated from bucket floors)"),
                "histogram",
            );
            let mut cumulative = 0u64;
            for (k, &count) in hist.buckets.iter().enumerate() {
                cumulative += count;
                // Bucket 0 holds the value 0; bucket k >= 1 holds
                // [2^(k-1), 2^k - 1], so its upper bound is 2^k - 1.
                let le = if k == 0 {
                    "0".to_string()
                } else if k >= 64 {
                    u64::MAX.to_string()
                } else {
                    ((1u64 << k) - 1).to_string()
                };
                let mut labels = base_labels.to_vec();
                labels.push(("le".to_string(), le));
                self.out.push_str(&format!(
                    "{full}_bucket{} {cumulative}\n",
                    label_block(&labels)
                ));
            }
            let mut labels = base_labels.to_vec();
            labels.push(("le".to_string(), "+Inf".to_string()));
            self.out.push_str(&format!(
                "{full}_bucket{} {}\n",
                label_block(&labels),
                hist.count
            ));
            self.out
                .push_str(&format!("{full}_sum{base} {}\n", hist.approx_sum()));
            self.out
                .push_str(&format!("{full}_count{base} {}\n", hist.count));
        }

        for gauge in &snapshot.labeled {
            let full = format!("{PROM_PREFIX}{}", gauge.name);
            let help = match gauge.name.as_str() {
                "phase_share" => {
                    "Derived: phase's share of summed phase wall (from latency histograms)"
                }
                "site_rollback_rate" => "Per-site recency-weighted rollback rate",
                "site_throttled" => "Per-site governor throttle denials",
                "grain_regions" => "Regions currently tracked at each commit-log grain",
                "warp" => "Time Warp shard telemetry (final snapshot only)",
                _ => "Scraped labeled gauge",
            };
            self.header(&full, help, "gauge");
            let mut labels = base_labels.to_vec();
            labels.extend(gauge.labels.iter().cloned());
            self.out
                .push_str(&format!("{full}{} {}\n", label_block(&labels), gauge.value));
        }
    }

    /// True when nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// The finished exposition document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// One-shot exposition of a single snapshot.
pub fn prometheus_text(snapshot: &MetricsSnapshot, base_labels: &[(String, String)]) -> String {
    let mut writer = PromWriter::new();
    writer.append(snapshot, base_labels);
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistogramSnapshot, LabeledGauge};

    /// Golden test: exact exposition of a hand-built snapshot — metric
    /// names, HELP/TYPE lines, cumulative buckets and label escaping.
    #[test]
    fn golden_prometheus_exposition() {
        let snapshot = MetricsSnapshot {
            ts: 42,
            counters: vec![("commits".to_string(), 3), ("log_stamps".to_string(), 17)],
            gauges: vec![("rollback_amplification".to_string(), 0.5)],
            histograms: vec![HistogramSnapshot {
                name: "thread_cycles".to_string(),
                count: 3,
                buckets: vec![1, 0, 2],
            }],
            labeled: vec![LabeledGauge::new(
                "phase_share",
                "phase",
                "va\"l\\id\nation",
                0.25,
            )],
        };
        let run = [("run".to_string(), "native/conflict".to_string())];
        let text = prometheus_text(&snapshot, &run);
        let expected = concat!(
            "# HELP mutls_commits_total Speculative threads committed\n",
            "# TYPE mutls_commits_total counter\n",
            "mutls_commits_total{run=\"native/conflict\"} 3\n",
            "# HELP mutls_log_stamps_total Scraped counter log_stamps\n",
            "# TYPE mutls_log_stamps_total counter\n",
            "mutls_log_stamps_total{run=\"native/conflict\"} 17\n",
            "# HELP mutls_rollback_amplification Derived: wasted_cycles / max(1, committed_cycles)\n",
            "# TYPE mutls_rollback_amplification gauge\n",
            "mutls_rollback_amplification{run=\"native/conflict\"} 0.5\n",
            "# HELP mutls_thread_cycles Cycles per retired speculative thread (log2 buckets) (sum approximated from bucket floors)\n",
            "# TYPE mutls_thread_cycles histogram\n",
            "mutls_thread_cycles_bucket{run=\"native/conflict\",le=\"0\"} 1\n",
            "mutls_thread_cycles_bucket{run=\"native/conflict\",le=\"1\"} 1\n",
            "mutls_thread_cycles_bucket{run=\"native/conflict\",le=\"3\"} 3\n",
            "mutls_thread_cycles_bucket{run=\"native/conflict\",le=\"+Inf\"} 3\n",
            "mutls_thread_cycles_sum{run=\"native/conflict\"} 4\n",
            "mutls_thread_cycles_count{run=\"native/conflict\"} 3\n",
            "# HELP mutls_phase_share Derived: phase's share of summed phase wall (from latency histograms)\n",
            "# TYPE mutls_phase_share gauge\n",
            "mutls_phase_share{run=\"native/conflict\",phase=\"va\\\"l\\\\id\\nation\"} 0.25\n",
        );
        assert_eq!(text, expected);
    }

    #[test]
    fn multi_snapshot_export_emits_headers_once() {
        let snapshot = MetricsSnapshot {
            ts: 0,
            counters: vec![("commits".to_string(), 1)],
            gauges: vec![],
            histograms: vec![],
            labeled: vec![],
        };
        let mut writer = PromWriter::new();
        writer.append(&snapshot, &[("run".to_string(), "a".to_string())]);
        writer.append(&snapshot, &[("run".to_string(), "b".to_string())]);
        let text = writer.finish();
        assert_eq!(text.matches("# TYPE mutls_commits_total").count(), 1);
        assert!(text.contains("mutls_commits_total{run=\"a\"} 1"));
        assert!(text.contains("mutls_commits_total{run=\"b\"} 1"));
    }
}
