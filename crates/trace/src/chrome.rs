//! Chrome trace-event JSON export (the `traceEvents` array format),
//! loadable in Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`.
//!
//! Each traced run becomes one *process* (`pid`), each thread rank one
//! *track* (`tid`).  `ValidateBegin`/`ValidateEnd` pairs are emitted as
//! duration (`"B"`/`"E"`) events so validation shows up as spans; every
//! other lifecycle event is an instant (`"i"`, thread-scoped).  Timestamps
//! are microseconds with nanosecond precision kept in the fractional part.

use serde::Serialize;

use crate::event::{EventKind, TraceEvent};

/// One traced run: a labelled, ordered event stream plus its drop count.
#[derive(Debug, Clone)]
pub struct TraceRun {
    /// Display label (becomes the Perfetto process name).
    pub label: String,
    /// Events in timestamp order.
    pub events: Vec<TraceEvent>,
    /// Events the rings overwrote before they were drained.
    pub dropped: u64,
}

/// Append `ts` nanoseconds as a microsecond timestamp with three decimals.
fn push_ts(out: &mut String, ns: u64) {
    out.push_str(&format!("{}.{:03}", ns / 1000, ns % 1000));
}

fn push_common(out: &mut String, pid: usize, ev: &TraceEvent) {
    out.push_str(",\"ts\":");
    push_ts(out, ev.ts);
    out.push_str(&format!(",\"pid\":{},\"tid\":{}", pid, ev.rank));
}

fn push_args(out: &mut String, ev: &TraceEvent) {
    out.push_str(",\"args\":{");
    out.push_str(&format!("\"site\":{},\"epoch\":{}", ev.site, ev.epoch));
    let mut first = false;
    ev.kind.write_payload(out, &mut first);
    out.push('}');
}

/// Render `runs` as a complete Chrome trace-event JSON document.
pub fn chrome_trace_json(runs: &[TraceRun]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push_event = |out: &mut String, body: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&body);
    };
    for (pid, run) in runs.iter().enumerate() {
        // Process metadata: name the run.
        let mut name = String::new();
        run.label.serialize_json(&mut name);
        push_event(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":{name}}}}}"
            ),
        );
        if run.dropped > 0 {
            // Surface the drop count where a human will see it.
            push_event(
                &mut out,
                format!(
                    "{{\"name\":\"dropped_events\",\"ph\":\"i\",\"s\":\"p\",\"ts\":0.000,\
                     \"pid\":{pid},\"tid\":0,\"args\":{{\"count\":{}}}}}",
                    run.dropped
                ),
            );
        }
        for ev in &run.events {
            let mut body = String::new();
            match ev.kind {
                EventKind::ValidateBegin { .. } => {
                    body.push_str("{\"name\":\"Validate\",\"ph\":\"B\"");
                    push_common(&mut body, pid, ev);
                    push_args(&mut body, ev);
                    body.push('}');
                }
                EventKind::ValidateEnd { .. } => {
                    body.push_str("{\"name\":\"Validate\",\"ph\":\"E\"");
                    push_common(&mut body, pid, ev);
                    push_args(&mut body, ev);
                    body.push('}');
                }
                _ => {
                    body.push_str(&format!(
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\"",
                        ev.kind.name()
                    ));
                    push_common(&mut body, pid, ev);
                    push_args(&mut body, ev);
                    body.push('}');
                }
            }
            push_event(&mut out, body);
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ValidateOutcome;
    use serde::JsonValue;

    fn ev(ts: u64, rank: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            ts,
            rank,
            site: 1,
            epoch: 2,
            kind,
        }
    }

    #[test]
    fn export_parses_and_pairs_validate_spans() {
        let runs = [TraceRun {
            label: "conflict cpus=4".to_string(),
            events: vec![
                ev(1000, 1, EventKind::ForkAttempt),
                ev(2000, 2, EventKind::ValidateBegin { ranges: 3 }),
                ev(
                    2500,
                    2,
                    EventKind::ValidateEnd {
                        outcome: ValidateOutcome::Clean,
                    },
                ),
                ev(2600, 2, EventKind::Commit),
            ],
            dropped: 1,
        }];
        let json = chrome_trace_json(&runs);
        let value = serde_json::parse(&json).expect("valid JSON");
        let JsonValue::Obj(entries) = &value else {
            panic!("top level must be an object");
        };
        let (_, events) = entries
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .expect("traceEvents key");
        let JsonValue::Arr(events) = events else {
            panic!("traceEvents must be an array");
        };
        // metadata + dropped marker + 4 events
        assert_eq!(events.len(), 6);
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.as_object())
            .filter_map(|o| o.iter().find(|(k, _)| k == "ph"))
            .filter_map(|(_, v)| match v {
                JsonValue::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(phases, vec!["M", "i", "i", "B", "E", "i"]);
        assert!(json.contains("\"ts\":2.500"), "ns precision kept: {json}");
        assert!(json.contains("\"dropped_events\""));
    }

    #[test]
    fn runs_map_to_distinct_pids() {
        let run = |label: &str| TraceRun {
            label: label.to_string(),
            events: vec![ev(0, 0, EventKind::Commit)],
            dropped: 0,
        };
        let json = chrome_trace_json(&[run("a"), run("b")]);
        assert!(json.contains("\"pid\":0"));
        assert!(json.contains("\"pid\":1"));
    }
}
