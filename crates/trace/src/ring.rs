//! Bounded single-producer/single-consumer event ring with drop-oldest
//! overflow semantics.
//!
//! Each speculative thread (rank) owns exactly one ring and is its only
//! producer, so pushes are wait-free: one relaxed load pair, one slot
//! write, one release store — no CAS, no locks.  When the ring is full the
//! *oldest* undrained event is overwritten and a dropped-events counter is
//! bumped, so a long run degrades to "most recent window" instead of
//! stalling the speculation hot path.
//!
//! Draining is only safe at quiescence (no speculative thread running),
//! which is when the harness collects traces anyway — between runs.  The
//! recorder documents and enforces this by only exposing drains through
//! end-of-run paths.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::TraceEvent;

/// One rank's lock-free SPSC event ring.
pub struct EventRing {
    buf: Box<[UnsafeCell<TraceEvent>]>,
    /// Index of the oldest undrained event (monotone, wraps via `% cap`).
    head: AtomicU64,
    /// Index one past the newest event (monotone).
    tail: AtomicU64,
    /// Events overwritten before they were drained.
    dropped: AtomicU64,
}

// SAFETY: the slot array is only written by the single producer thread
// (push) and only read by a consumer at quiescence (drain), when no
// producer is running; the head/tail indices are atomics.
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl EventRing {
    /// A ring holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        EventRing {
            buf: (0..cap)
                .map(|_| UnsafeCell::new(TraceEvent::EMPTY))
                .collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append one event (single producer only).  Never blocks; on a full
    /// ring the oldest event is overwritten and counted as dropped.
    pub fn push(&self, ev: TraceEvent) {
        let cap = self.buf.len() as u64;
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        if tail - head >= cap {
            // Drop-oldest: advance head past the slot we are about to
            // overwrite.  Only the producer moves head while running (the
            // consumer only drains at quiescence), so a plain store works.
            self.head.store(head + 1, Ordering::Relaxed);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: single producer; the consumer only reads at quiescence.
        unsafe {
            *self.buf[(tail % cap) as usize].get() = ev;
        }
        self.tail.store(tail + 1, Ordering::Release);
    }

    /// Number of undrained events.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        (tail - head) as usize
    }

    /// True when no undrained events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten before they could be drained.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Take every buffered event in emission order.  **Quiescence only**:
    /// the producer thread must not be pushing concurrently.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        let cap = self.buf.len() as u64;
        let mut out = Vec::with_capacity((tail - head) as usize);
        for i in head..tail {
            // SAFETY: quiescent — no producer is writing these slots.
            out.push(unsafe { *self.buf[(i % cap) as usize].get() });
        }
        self.head.store(tail, Ordering::Release);
        out
    }

    /// Discard all buffered events and zero the dropped counter.
    pub fn reset(&self) {
        let tail = self.tail.load(Ordering::Acquire);
        self.head.store(tail, Ordering::Release);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            ts,
            ..TraceEvent::EMPTY
        }
    }

    #[test]
    fn push_then_drain_preserves_order() {
        let ring = EventRing::new(8);
        for i in 0..5 {
            ring.push(ev(i));
        }
        assert_eq!(ring.len(), 5);
        let drained = ring.drain();
        assert_eq!(
            drained.iter().map(|e| e.ts).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let ring = EventRing::new(4);
        for i in 0..10 {
            ring.push(ev(i));
        }
        assert_eq!(ring.dropped(), 6, "six oldest events were overwritten");
        let drained = ring.drain();
        assert_eq!(
            drained.iter().map(|e| e.ts).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "the most recent window survives"
        );
    }

    #[test]
    fn drain_resets_for_reuse() {
        let ring = EventRing::new(2);
        ring.push(ev(1));
        let _ = ring.drain();
        ring.push(ev(2));
        ring.push(ev(3));
        assert_eq!(ring.dropped(), 0, "a drained ring has room again");
        assert_eq!(ring.drain().len(), 2);
    }

    #[test]
    fn reset_discards_and_clears_dropped() {
        let ring = EventRing::new(2);
        for i in 0..5 {
            ring.push(ev(i));
        }
        assert!(ring.dropped() > 0);
        ring.reset();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn cross_thread_producer_consumer() {
        let ring = std::sync::Arc::new(EventRing::new(1024));
        let producer = {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..1000 {
                    ring.push(ev(i));
                }
            })
        };
        producer.join().unwrap();
        // Quiescent now: drain from this thread.
        let drained = ring.drain();
        assert_eq!(drained.len(), 1000);
        assert!(drained.windows(2).all(|w| w[0].ts < w[1].ts));
    }
}
