//! # mutls-trace — the speculation flight recorder
//!
//! Every speculative thread writes lifecycle events ([`TraceEvent`]) into
//! its own bounded, lock-free SPSC ring ([`EventRing`]) with drop-oldest
//! overflow semantics; when tracing is disabled the hot path costs exactly
//! one predictable branch ([`Recorder::enabled`]).  On top of the event
//! stream, per-phase durations are folded into always-on log2-bucket
//! latency histograms ([`LatencyRecorder`]) whose p50/p99/p999 quantiles
//! surface as `RunReport.latency`.  Drained event streams export to Chrome
//! trace-event JSON ([`chrome_trace_json`]) loadable in Perfetto or
//! `chrome://tracing`.
//!
//! The crate is a leaf: it knows nothing about the runtime, simulator or
//! harness.  Each layer maps its own vocabulary (rollback reasons,
//! recovery plans, fork policies) onto the small export enums here.

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod histogram;
pub mod ring;

pub use chrome::{chrome_trace_json, TraceRun};
pub use event::{
    DenyPolicy, DoomSource, EventKind, PlanArm, RollbackCause, TraceEvent, ValidateOutcome,
};
pub use histogram::{Histogram, LatencyPhase, LatencyRecorder, LatencyReport, LatencyRow};
pub use ring::EventRing;

/// Recorder knobs carried inside a runtime configuration (`Copy` so the
/// owning config stays `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record lifecycle events into the per-rank rings.  Off by default:
    /// the disabled hot path is a single branch and the latency
    /// histograms stay on regardless.
    pub events: bool,
    /// Per-rank ring capacity in events (drop-oldest beyond this).
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            events: false,
            ring_capacity: 4096,
        }
    }
}

impl TraceConfig {
    /// Event tracing enabled at the default ring capacity.
    pub fn enabled() -> Self {
        TraceConfig {
            events: true,
            ..TraceConfig::default()
        }
    }

    /// Set the per-rank ring capacity.
    pub fn ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }
}

/// The flight recorder: one SPSC event ring per thread rank plus the
/// always-on latency histogram bank.
///
/// Constructed once per runtime with one ring per rank (`0..ranks`); each
/// rank's ring is written only by the thread running as that rank, which
/// is what makes the rings SPSC without any further coordination.  Event
/// drains happen at quiescence only (between runs).
pub struct Recorder {
    enabled: bool,
    rings: Vec<EventRing>,
    latency: LatencyRecorder,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled)
            .field("rings", &self.rings.len())
            .finish()
    }
}

impl Recorder {
    /// A recorder for ranks `0..ranks` under `config`.  When event tracing
    /// is off no rings are allocated at all — the recorder is just the
    /// latency histogram bank plus a `false` flag.
    pub fn new(config: TraceConfig, ranks: usize) -> Self {
        let rings = if config.events {
            (0..ranks)
                .map(|_| EventRing::new(config.ring_capacity))
                .collect()
        } else {
            Vec::new()
        };
        Recorder {
            enabled: config.events,
            rings,
            latency: LatencyRecorder::new(),
        }
    }

    /// A recorder with event tracing off (histograms still live).
    pub fn disabled() -> Self {
        Recorder::new(TraceConfig::default(), 0)
    }

    /// Whether lifecycle events are being recorded.  This is the one
    /// branch the disabled hot path pays.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record one lifecycle event into `ev.rank`'s ring.  No-op when
    /// disabled or when the rank has no ring.
    #[inline]
    pub fn emit(&self, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let Some(ring) = self.rings.get(ev.rank as usize) {
            ring.push(ev);
        }
    }

    /// The always-on latency histogram bank.
    #[inline]
    pub fn latency(&self) -> &LatencyRecorder {
        &self.latency
    }

    /// Snapshot the per-phase latency quantiles.
    pub fn latency_report(&self) -> LatencyReport {
        self.latency.report()
    }

    /// Drain every ring and merge the streams into one list ordered by
    /// `(ts, rank)`.  **Quiescence only** — no speculative thread may be
    /// emitting concurrently.
    pub fn drain_events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self.rings.iter().flat_map(|r| r.drain()).collect();
        all.sort_by_key(|e| (e.ts, e.rank));
        all
    }

    /// Total events overwritten before they could be drained, across all
    /// rings.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped()).sum()
    }

    /// Discard buffered events, zero the drop counters and reset the
    /// latency histograms (start of a new run).
    pub fn reset(&self) {
        for ring in &self.rings {
            ring.reset();
        }
        self.latency.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, rank: u32) -> TraceEvent {
        TraceEvent {
            ts,
            rank,
            site: 0,
            epoch: 0,
            kind: EventKind::Commit,
        }
    }

    #[test]
    fn disabled_recorder_drops_everything_cheaply() {
        let rec = Recorder::disabled();
        assert!(!rec.enabled());
        rec.emit(ev(1, 0));
        assert!(rec.drain_events().is_empty());
        assert_eq!(rec.dropped(), 0);
        // Latency histograms still work with tracing off.
        rec.latency().record(LatencyPhase::Validation, 42);
        assert_eq!(rec.latency_report().total_samples(), 1);
    }

    #[test]
    fn enabled_recorder_merges_ranks_by_timestamp() {
        let rec = Recorder::new(TraceConfig::enabled(), 3);
        rec.emit(ev(30, 2));
        rec.emit(ev(10, 1));
        rec.emit(ev(20, 0));
        rec.emit(ev(10, 0));
        let events = rec.drain_events();
        let order: Vec<(u64, u32)> = events.iter().map(|e| (e.ts, e.rank)).collect();
        assert_eq!(order, vec![(10, 0), (10, 1), (20, 0), (30, 2)]);
    }

    #[test]
    fn out_of_range_rank_is_ignored() {
        let rec = Recorder::new(TraceConfig::enabled(), 1);
        rec.emit(ev(1, 5));
        assert!(rec.drain_events().is_empty());
    }

    #[test]
    fn reset_clears_events_and_latency() {
        let rec = Recorder::new(TraceConfig::enabled().ring_capacity(2), 1);
        for i in 0..5 {
            rec.emit(ev(i, 0));
        }
        rec.latency().record(LatencyPhase::ForkToCommit, 7);
        assert!(rec.dropped() > 0);
        rec.reset();
        assert!(rec.drain_events().is_empty());
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.latency_report().total_samples(), 0);
    }
}
