//! Log2-bucket latency histograms and their p50/p99/p999 report rows.
//!
//! Durations are folded into 65 power-of-two buckets (`0`, `[1,2)`,
//! `[2,4)`, … `[2^63, 2^64)`) with one relaxed `fetch_add` per sample, so
//! the histograms stay on even when event tracing is off — they are what
//! feeds `RunReport.latency`.  Quantiles are reported as the *lower bound*
//! of the bucket the quantile falls in: deterministic, monotone, and never
//! over-reports a latency by more than 2×.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Number of log2 buckets: one for zero plus one per bit of a `u64`.
const BUCKETS: usize = 65;

/// Which per-phase duration a sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyPhase {
    /// Fork dispatch to successful commit of the same thread.
    ForkToCommit,
    /// Join-time read-set validation.
    Validation,
    /// Commit-lock acquisition plus write-set stamping.
    CommitLockWait,
    /// CAS retries paid by a lock-free commit batch.  The *value* is a
    /// retry count, not a duration — the histogram buckets then read as
    /// "batches that paid 1, 2, 4… retries" (only contended batches are
    /// recorded, mirroring the `CommitCasRetry` event).
    CommitCasRetry,
    /// Conflict repaired in place by value-predict retry.
    RepairRetry,
    /// Rollback repaired by inline re-execution under targeted dooming.
    RepairDoomSet,
    /// Rollback repaired by inline re-execution under the squash cascade.
    RepairCascade,
}

impl LatencyPhase {
    /// Every phase, in presentation order.
    pub const ALL: [LatencyPhase; 7] = [
        LatencyPhase::ForkToCommit,
        LatencyPhase::Validation,
        LatencyPhase::CommitLockWait,
        LatencyPhase::CommitCasRetry,
        LatencyPhase::RepairRetry,
        LatencyPhase::RepairDoomSet,
        LatencyPhase::RepairCascade,
    ];

    /// Stable label used in tables and JSON rows.
    pub fn label(self) -> &'static str {
        match self {
            LatencyPhase::ForkToCommit => "fork-to-commit",
            LatencyPhase::Validation => "validation",
            LatencyPhase::CommitLockWait => "commit-lock-wait",
            LatencyPhase::CommitCasRetry => "commit-cas-retry",
            LatencyPhase::RepairRetry => "repair-retry",
            LatencyPhase::RepairDoomSet => "repair-doomset",
            LatencyPhase::RepairCascade => "repair-cascade",
        }
    }

    fn index(self) -> usize {
        match self {
            LatencyPhase::ForkToCommit => 0,
            LatencyPhase::Validation => 1,
            LatencyPhase::CommitLockWait => 2,
            LatencyPhase::CommitCasRetry => 3,
            LatencyPhase::RepairRetry => 4,
            LatencyPhase::RepairDoomSet => 5,
            LatencyPhase::RepairCascade => 6,
        }
    }
}

/// One concurrent log2-bucket histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a value: 0 for 0, else `floor(log2(v)) + 1`.
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Lower bound of a bucket (the reported representative value).
fn bucket_floor(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

impl Histogram {
    /// A new, empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (in thousandths: 500 = p50, 999 = p999) as the
    /// lower bound of the bucket it falls in; 0 when empty.
    pub fn quantile_millis(&self, q: u64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total * q).div_ceil(1000)).max(1);
        let mut cumulative = 0;
        for (bucket, count) in counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= target {
                return bucket_floor(bucket);
            }
        }
        bucket_floor(BUCKETS - 1)
    }

    /// Approximate sum of all samples: `Σ count × bucket_floor`.  Floors
    /// are powers of two, so this is a deterministic lower bound within
    /// 2× — good enough for share-of-total attribution.
    pub fn approx_total(&self) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .map(|(bucket, count)| {
                count
                    .load(Ordering::Relaxed)
                    .saturating_mul(bucket_floor(bucket))
            })
            .sum()
    }

    /// Zero every bucket.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

/// One phase's row in [`LatencyReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyRow {
    /// Phase label (see [`LatencyPhase::label`]).
    pub phase: String,
    /// Number of samples.
    pub count: u64,
    /// Median, as the lower bound of its log2 bucket.
    pub p50: u64,
    /// 99th percentile, lower bound of its log2 bucket.
    pub p99: u64,
    /// 99.9th percentile, lower bound of its log2 bucket.
    pub p999: u64,
}

/// Per-phase latency quantiles of one run (`RunReport.latency`).
///
/// Always carries one row per [`LatencyPhase`], in `ALL` order, so the
/// serialized shape is stable for golden tests and determinism checks.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// One row per phase, in [`LatencyPhase::ALL`] order.
    pub phases: Vec<LatencyRow>,
}

impl LatencyReport {
    /// The row for `phase`, if present.
    pub fn row(&self, phase: LatencyPhase) -> Option<&LatencyRow> {
        self.phases.iter().find(|r| r.phase == phase.label())
    }

    /// Total samples across all phases.
    pub fn total_samples(&self) -> u64 {
        self.phases.iter().map(|r| r.count).sum()
    }
}

/// The always-on per-phase histogram bank.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    histograms: [Histogram; LatencyPhase::ALL.len()],
}

impl LatencyRecorder {
    /// A new bank of empty histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration sample for `phase`.
    #[inline]
    pub fn record(&self, phase: LatencyPhase, value: u64) {
        self.histograms[phase.index()].record(value);
    }

    /// Direct access to one phase's histogram.
    pub fn histogram(&self, phase: LatencyPhase) -> &Histogram {
        &self.histograms[phase.index()]
    }

    /// Snapshot the quantile rows for every phase.
    pub fn report(&self) -> LatencyReport {
        LatencyReport {
            phases: LatencyPhase::ALL
                .iter()
                .map(|&phase| {
                    let h = &self.histograms[phase.index()];
                    LatencyRow {
                        phase: phase.label().to_string(),
                        count: h.count(),
                        p50: h.quantile_millis(500),
                        p99: h.quantile_millis(990),
                        p999: h.quantile_millis(999),
                    }
                })
                .collect(),
        }
    }

    /// Per-phase approximate totals (`Σ count × bucket_floor`), in
    /// [`LatencyPhase::ALL`] order — the metrics plane's phase-attribution
    /// input.
    pub fn approx_totals(&self) -> Vec<(&'static str, u64)> {
        LatencyPhase::ALL
            .iter()
            .map(|&phase| (phase.label(), self.histograms[phase.index()].approx_total()))
            .collect()
    }

    /// Zero every histogram.
    pub fn reset(&self) {
        for histogram in &self.histograms {
            histogram.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(64), 1u64 << 63);
    }

    #[test]
    fn quantiles_of_uniform_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        // p50 of 1..=1000 is 500, whose bucket [512,1024) floor... 500 is
        // in [256,512): floor 256.
        assert_eq!(h.quantile_millis(500), 256);
        // p99 = 990 → bucket [512,1024).
        assert_eq!(h.quantile_millis(990), 512);
        assert_eq!(h.quantile_millis(999), 512);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile_millis(500), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = Histogram::new();
        h.record(1 << 20);
        for q in [500, 990, 999] {
            assert_eq!(h.quantile_millis(q), 1 << 20);
        }
    }

    #[test]
    fn recorder_reports_all_phases_in_order() {
        let rec = LatencyRecorder::new();
        rec.record(LatencyPhase::Validation, 100);
        rec.record(LatencyPhase::Validation, 100);
        let report = rec.report();
        assert_eq!(report.phases.len(), LatencyPhase::ALL.len());
        for (row, phase) in report.phases.iter().zip(LatencyPhase::ALL) {
            assert_eq!(row.phase, phase.label());
        }
        let row = report.row(LatencyPhase::Validation).unwrap();
        assert_eq!(row.count, 2);
        assert_eq!(row.p50, 64, "100 falls in bucket [64,128)");
        assert_eq!(report.total_samples(), 2);
        rec.reset();
        assert_eq!(rec.report().total_samples(), 0);
    }

    #[test]
    fn latency_report_round_trips_through_json() {
        let rec = LatencyRecorder::new();
        rec.record(LatencyPhase::ForkToCommit, 12345);
        rec.record(LatencyPhase::RepairCascade, 7);
        let report = rec.report();
        let mut json = String::new();
        report.serialize_json(&mut json);
        let value = serde_json::from_str::<LatencyReport>(&json).unwrap();
        assert_eq!(value, report);
    }
}
