//! The speculation lifecycle event vocabulary.
//!
//! One [`TraceEvent`] is emitted per lifecycle transition of a speculative
//! thread (fork, validate, commit, rollback, …) plus one per control-plane
//! decision (governor verdicts, grain-controller regrains).  Every event is
//! stamped with the emitting thread's rank, the fork-site id it was
//! launched from and the commit log's epoch at emission time, so the
//! cross-thread causal order — *which commit doomed which reader* — can be
//! reconstructed offline from the stream alone.

use serde::Serialize;

/// Why a fork request was denied without launching a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenyPolicy {
    /// The adaptive governor throttled the fork site.
    Governor,
    /// The forking model forbade this forker (not most-speculative, …).
    Model,
    /// No idle virtual CPU was available.
    NoCpu,
    /// A speculative parent mid-re-execution is pinned inline.
    Reexec,
}

impl DenyPolicy {
    /// Stable lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            DenyPolicy::Governor => "governor",
            DenyPolicy::Model => "model",
            DenyPolicy::NoCpu => "no-cpu",
            DenyPolicy::Reexec => "reexec",
        }
    }
}

/// How a join-time validation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidateOutcome {
    /// Every read validated against the commit log.
    Clean,
    /// Every read validated, and at least one did so *precisely*: its
    /// range version had moved but the commit log's version rings proved
    /// the commits missed the word (mvcc — single-version validation
    /// would have doomed the thread).
    PrecisePass,
    /// Version validation conflicted but value prediction repaired every
    /// conflicting read in place (the thread still commits).
    Retried,
    /// Genuine dependence conflict — the thread rolls back.
    Conflict,
    /// Conservative doom: the conflicting words all still held their
    /// first-read values, so the rollback is (suspected) grain- or
    /// ring-overflow-induced conservatism rather than a proven
    /// dependence violation.
    ConservativeDoom,
    /// The task had already failed before validation (overflow, cascade,
    /// doom); its buffers were discarded unvalidated.
    Failed,
}

impl ValidateOutcome {
    /// Stable lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            ValidateOutcome::Clean => "clean",
            ValidateOutcome::PrecisePass => "precise-pass",
            ValidateOutcome::Retried => "retried",
            ValidateOutcome::Conflict => "conflict",
            ValidateOutcome::ConservativeDoom => "conservative-doom",
            ValidateOutcome::Failed => "failed",
        }
    }
}

/// Why a thread rolled back, mirroring the runtime's `RollbackReason`
/// breakdown (kept as a separate enum so the recorder stays a leaf crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollbackCause {
    /// Read-set dependence conflict.
    Conflict,
    /// Speculative buffer overflow.
    Overflow,
    /// Injected by the sensitivity mode.
    Injected,
    /// Anything else (cascade, no-sync, unregistered address, …).
    Other,
}

impl RollbackCause {
    /// Stable lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            RollbackCause::Conflict => "conflict",
            RollbackCause::Overflow => "overflow",
            RollbackCause::Injected => "injected",
            RollbackCause::Other => "other",
        }
    }
}

/// Which arm of the recovery ladder repaired a conflicting join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanArm {
    /// Value-predict retry: re-stamp and commit in place.
    Retry,
    /// Targeted dooming of the registered readers of the rewritten ranges.
    DoomSet,
    /// Full squash cascade (lazy join-time discovery).
    Cascade,
    /// No recovery ladder ran (the thread died before its join).
    None,
}

impl PlanArm {
    /// Stable lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            PlanArm::Retry => "retry",
            PlanArm::DoomSet => "doomset",
            PlanArm::Cascade => "cascade",
            PlanArm::None => "none",
        }
    }
}

/// Who doomed a still-running speculative thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoomSource {
    /// A committing writer found the victim in the reader registry.
    Commit,
    /// A rollback about to re-execute the victim's read ranges.
    Rollback,
    /// A grain-controller regrain flushed the victim's region.
    Regrain,
    /// A speculative writer's *buffered* store overlaps the victim's reads
    /// (hard doom — no value revalidation can clear it).
    Buffered,
}

impl DoomSource {
    /// Stable lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            DoomSource::Commit => "commit",
            DoomSource::Rollback => "rollback",
            DoomSource::Regrain => "regrain",
            DoomSource::Buffered => "buffered",
        }
    }
}

/// What happened (the discriminant of one [`TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A fork point asked for a speculative thread.
    ForkAttempt,
    /// The fork was denied before any thread launched.
    ForkDenied {
        /// Which policy denied it.
        policy: DenyPolicy,
    },
    /// The adaptive governor ruled on a fork request.
    GovernorDecision {
        /// `true` when speculation was allowed.
        allowed: bool,
    },
    /// A speculative thread started running (emitted with the child's
    /// rank; `parent` closes the causal link to the fork).
    SpecStart {
        /// Rank of the forking thread.
        parent: u32,
    },
    /// Join-time read-set validation started.
    ValidateBegin {
        /// Number of read-set entries to validate.
        ranges: u32,
    },
    /// Join-time validation finished.
    ValidateEnd {
        /// The verdict.
        outcome: ValidateOutcome,
    },
    /// Time spent acquiring commit locks and stamping the write-set.
    CommitLockWait {
        /// Wait + stamp duration (ns native, cycles simulated).
        ns: u64,
    },
    /// A lock-free commit batch paid CAS retries (same-slot
    /// `compare_exchange` losses plus seqlock-forced re-stamps).
    /// Emitted only when `attempts > 0` — uncontended disjoint-range
    /// commits stay silent, so the event count is itself a contention
    /// signal.
    CommitCasRetry {
        /// Retry count for the batch (not a duration).
        attempts: u64,
    },
    /// The thread's write-set was published (or absorbed by its parent).
    Commit,
    /// The thread was discarded and its continuation re-executed.
    Rollback {
        /// Why it rolled back.
        reason: RollbackCause,
        /// Which recovery-ladder arm handled the repair.
        plan: PlanArm,
    },
    /// An in-flight value-predict retry cleared a doom without stopping.
    RetryInFlight,
    /// A still-running thread was doomed.
    Doom {
        /// Who doomed it.
        source: DoomSource,
    },
    /// The grain controller re-grained one region.
    Regrain {
        /// Region id.
        region: u64,
        /// Previous grain (log2 bytes).
        from: u32,
        /// New grain (log2 bytes).
        to: u32,
    },
    /// One grain-controller tick ran.
    GrainTick {
        /// How many regrain actions it issued.
        actions: u32,
    },
}

impl EventKind {
    /// Stable event name (matches the issue's vocabulary; used as the
    /// Chrome trace-event `name`).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ForkAttempt => "ForkAttempt",
            EventKind::ForkDenied { .. } => "ForkDenied",
            EventKind::GovernorDecision { .. } => "GovernorDecision",
            EventKind::SpecStart { .. } => "SpecStart",
            EventKind::ValidateBegin { .. } => "ValidateBegin",
            EventKind::ValidateEnd { .. } => "ValidateEnd",
            EventKind::CommitLockWait { .. } => "CommitLockWait",
            EventKind::CommitCasRetry { .. } => "CommitCasRetry",
            EventKind::Commit => "Commit",
            EventKind::Rollback { .. } => "Rollback",
            EventKind::RetryInFlight => "RetryInFlight",
            EventKind::Doom { .. } => "Doom",
            EventKind::Regrain { .. } => "Regrain",
            EventKind::GrainTick { .. } => "GrainTick",
        }
    }

    /// Append this kind's payload as `"key":value` JSON members (empty for
    /// payload-free kinds).  `first` tracks whether a comma is needed.
    pub(crate) fn write_payload(&self, out: &mut String, first: &mut bool) {
        let mut field = |out: &mut String, key: &str, value: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            out.push_str(&value);
        };
        match self {
            EventKind::ForkAttempt | EventKind::Commit | EventKind::RetryInFlight => {}
            EventKind::ForkDenied { policy } => {
                field(out, "policy", format!("\"{}\"", policy.label()));
            }
            EventKind::GovernorDecision { allowed } => {
                field(out, "allowed", allowed.to_string());
            }
            EventKind::SpecStart { parent } => field(out, "parent", parent.to_string()),
            EventKind::ValidateBegin { ranges } => field(out, "ranges", ranges.to_string()),
            EventKind::ValidateEnd { outcome } => {
                field(out, "outcome", format!("\"{}\"", outcome.label()));
            }
            EventKind::CommitLockWait { ns } => field(out, "ns", ns.to_string()),
            EventKind::CommitCasRetry { attempts } => {
                field(out, "attempts", attempts.to_string());
            }
            EventKind::Rollback { reason, plan } => {
                field(out, "reason", format!("\"{}\"", reason.label()));
                field(out, "plan", format!("\"{}\"", plan.label()));
            }
            EventKind::Doom { source } => {
                field(out, "source", format!("\"{}\"", source.label()));
            }
            EventKind::Regrain { region, from, to } => {
                field(out, "region", region.to_string());
                field(out, "from", from.to_string());
                field(out, "to", to.to_string());
            }
            EventKind::GrainTick { actions } => field(out, "actions", actions.to_string()),
        }
    }
}

/// One flight-recorder entry.
///
/// Plain `Copy` data so the SPSC rings can store it without allocation and
/// a drain is a memcpy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timestamp: nanoseconds since the recorder's origin (native) or
    /// virtual cycles (simulator).
    pub ts: u64,
    /// Rank of the thread the event belongs to (0 = non-speculative).
    pub rank: u32,
    /// Fork-site id the thread was launched from (0 when not applicable).
    pub site: u32,
    /// Commit-log epoch observed at emission (the causal clock).
    pub epoch: u64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    pub(crate) const EMPTY: TraceEvent = TraceEvent {
        ts: 0,
        rank: 0,
        site: 0,
        epoch: 0,
        kind: EventKind::ForkAttempt,
    };
}

impl Serialize for TraceEvent {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"ts\":{},\"rank\":{},\"site\":{},\"epoch\":{},\"name\":\"{}\"",
            self.ts,
            self.rank,
            self.site,
            self.epoch,
            self.kind.name()
        ));
        let mut first = false;
        self.kind.write_payload(out, &mut first);
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_serializes_with_payload() {
        let ev = TraceEvent {
            ts: 5,
            rank: 2,
            site: 7,
            epoch: 9,
            kind: EventKind::Rollback {
                reason: RollbackCause::Conflict,
                plan: PlanArm::DoomSet,
            },
        };
        let mut out = String::new();
        ev.serialize_json(&mut out);
        assert_eq!(
            out,
            "{\"ts\":5,\"rank\":2,\"site\":7,\"epoch\":9,\"name\":\"Rollback\",\
             \"reason\":\"conflict\",\"plan\":\"doomset\"}"
        );
    }

    #[test]
    fn payload_free_kinds_serialize_cleanly() {
        let ev = TraceEvent {
            kind: EventKind::Commit,
            ..TraceEvent::EMPTY
        };
        let mut out = String::new();
        ev.serialize_json(&mut out);
        assert_eq!(
            out,
            "{\"ts\":0,\"rank\":0,\"site\":0,\"epoch\":0,\"name\":\"Commit\"}"
        );
    }
}
