//! Governor policies: how per-site profiles turn into fork decisions.
//!
//! * [`StaticPolicy`] — always allow, always the configured model: exactly
//!   the seed runtime's unconditional speculation.
//! * [`ThrottlePolicy`] — suppress speculation at sites whose
//!   recency-weighted rollback or overflow rate crosses a threshold.
//!   Exponential decay plus periodic *probe* forks let a suppressed site
//!   re-earn speculation when its behaviour improves (cf. Prophet's
//!   profile-guided speculation filtering).
//! * [`ModelSelectPolicy`] — pick the forking model *per site* instead of
//!   one global `ForkModel`: a short round-robin warm-up tries all three
//!   models, then the site sticks with the one that wasted the least work,
//!   still exploring periodically.

use std::fmt;
use std::str::FromStr;

use crate::fork_model::ForkModel;
use crate::site::{ModelStats, SiteRecord};

/// Which governor policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicyKind {
    /// Unconditional speculation with the configured model (seed behavior).
    #[default]
    Static,
    /// Suppress speculation at unprofitable sites.
    Throttle,
    /// Choose the forking model per site.
    ModelSelect,
}

impl PolicyKind {
    /// All policies, for sweeps.
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::Static,
        PolicyKind::Throttle,
        PolicyKind::ModelSelect,
    ];

    /// Short label for experiment output.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Static => "static",
            PolicyKind::Throttle => "throttle",
            PolicyKind::ModelSelect => "modelselect",
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "static" => Ok(PolicyKind::Static),
            "throttle" => Ok(PolicyKind::Throttle),
            "modelselect" | "model-select" | "model_select" => Ok(PolicyKind::ModelSelect),
            other => Err(format!("unknown governor policy: {other}")),
        }
    }
}

/// Configuration of the adaptive governor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// The policy to run.
    pub policy: PolicyKind,
    /// Rollback-rate threshold above which Throttle suppresses a site.
    pub rollback_threshold: f64,
    /// Overflow-rate threshold above which Throttle suppresses a site.
    pub overflow_threshold: f64,
    /// Joined samples a site must have before Throttle may suppress it,
    /// and forks each model receives during ModelSelect warm-up.
    pub min_samples: u64,
    /// Exponential forgetting factor in `(0, 1]` applied per outcome to
    /// the recency-weighted counters (1.0 = never forget).
    pub decay: f64,
    /// While a site is suppressed, every `probe_interval`-th fork request
    /// is allowed through as a probe so the site can re-earn speculation;
    /// ModelSelect re-explores models at the same cadence.
    pub probe_interval: u64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            policy: PolicyKind::Static,
            rollback_threshold: 0.5,
            overflow_threshold: 0.5,
            min_samples: 4,
            decay: 0.9,
            probe_interval: 16,
        }
    }
}

impl GovernorConfig {
    /// Convenience constructor for a policy with default tuning.
    pub fn with_policy(policy: PolicyKind) -> Self {
        GovernorConfig {
            policy,
            ..Default::default()
        }
    }

    /// Set the rollback-rate threshold (builder style).
    ///
    /// # Panics
    /// Panics if `t` is not within `[0, 1]`.
    pub fn rollback_threshold(mut self, t: f64) -> Self {
        assert!((0.0..=1.0).contains(&t), "threshold must be in [0,1]");
        self.rollback_threshold = t;
        self
    }

    /// Set the overflow-rate threshold (builder style).
    ///
    /// # Panics
    /// Panics if `t` is not within `[0, 1]`.
    pub fn overflow_threshold(mut self, t: f64) -> Self {
        assert!((0.0..=1.0).contains(&t), "threshold must be in [0,1]");
        self.overflow_threshold = t;
        self
    }

    /// Set the warm-up sample count (builder style).
    pub fn min_samples(mut self, n: u64) -> Self {
        self.min_samples = n;
        self
    }

    /// Set the exponential forgetting factor (builder style).
    ///
    /// # Panics
    /// Panics if `d` is not within `(0, 1]`.
    pub fn decay(mut self, d: f64) -> Self {
        assert!(d > 0.0 && d <= 1.0, "decay must be in (0,1]");
        self.decay = d;
        self
    }

    /// Set the probe interval (builder style).
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn probe_interval(mut self, n: u64) -> Self {
        assert!(n > 0, "probe interval must be positive");
        self.probe_interval = n;
        self
    }
}

/// The governor's answer to "may this site speculate right now?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForkDecision {
    /// Speculate, using the given forking model.
    Allow(ForkModel),
    /// Do not speculate; the parent will run the continuation inline.
    Deny,
}

impl ForkDecision {
    /// True when speculation was allowed.
    pub fn allowed(&self) -> bool {
        matches!(self, ForkDecision::Allow(_))
    }
}

/// A pluggable fork-decision policy.
///
/// Policies receive exclusive access to the site's record, so they may
/// keep per-site policy state (probe streaks, decision counters) in it.
pub trait GovernorPolicy: Send + Sync {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Decide whether (and under which model) the site may speculate.
    fn decide(
        &self,
        record: &mut SiteRecord,
        config: &GovernorConfig,
        default_model: ForkModel,
    ) -> ForkDecision;
}

/// Seed behaviour: always allow, always the configured default model.
#[derive(Debug, Default)]
pub struct StaticPolicy;

impl GovernorPolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        "static"
    }

    fn decide(
        &self,
        record: &mut SiteRecord,
        _config: &GovernorConfig,
        default_model: ForkModel,
    ) -> ForkDecision {
        record.decisions += 1;
        ForkDecision::Allow(default_model)
    }
}

/// Suppress speculation at sites that keep rolling back or overflowing.
///
/// Conflict rollbacks classified as *suspected false sharing* (see
/// `SiteRecord::false_sharing_fraction`) are treated more leniently: the
/// right fix for a grain-induced conflict is a finer commit-log grain,
/// not less parallelism, so when false sharing dominates a site's recent
/// rollbacks the policy raises its deny threshold halfway toward 1 and
/// probes twice as often — the site keeps most of its speculation while
/// genuinely conflicting sites are still shut down hard.
///
/// Conflicts repaired by **value-predict-and-retry** never reach the
/// rollback rate at all: a retried join is absorbed as a *commit* (plus a
/// `hot_retries` sample), so a site whose conflicts are consistently
/// repaired for the price of a re-validation pass keeps speculating,
/// while a site whose conflicts force squash-and-re-execute is shut
/// down — the policy prices a retried conflict as cheap and a squashed
/// one as expensive, exactly the recovery engine's cost order.
#[derive(Debug, Default)]
pub struct ThrottlePolicy;

/// Fraction of recent rollbacks that must be suspected false sharing
/// before [`ThrottlePolicy`] switches to its lenient regime.
pub const FALSE_SHARING_DOMINANCE: f64 = 0.5;

impl GovernorPolicy for ThrottlePolicy {
    fn name(&self) -> &'static str {
        "throttle"
    }

    fn decide(
        &self,
        record: &mut SiteRecord,
        config: &GovernorConfig,
        default_model: ForkModel,
    ) -> ForkDecision {
        record.decisions += 1;
        if record.samples() < config.min_samples {
            return ForkDecision::Allow(default_model);
        }
        let fs_dominated = record.false_sharing_fraction() > FALSE_SHARING_DOMINANCE;
        let rollback_threshold = if fs_dominated {
            // Halfway between the configured threshold and 1: suspected
            // false sharing has to be far more severe before forks stop.
            (config.rollback_threshold + 1.0) / 2.0
        } else {
            config.rollback_threshold
        };
        let unprofitable = record.rollback_rate() > rollback_threshold
            || record.overflow_rate() > config.overflow_threshold;
        if !unprofitable {
            record.denied_streak = 0;
            return ForkDecision::Allow(default_model);
        }
        record.denied_streak += 1;
        let probe_interval = if fs_dominated {
            (config.probe_interval / 2).max(1)
        } else {
            config.probe_interval
        };
        if record.denied_streak >= probe_interval {
            // Probe: let one fork through so the decayed rates can recover
            // if the site's behaviour changed.
            record.denied_streak = 0;
            return ForkDecision::Allow(default_model);
        }
        ForkDecision::Deny
    }
}

/// Choose the forking model per site from observed per-model efficiency.
#[derive(Debug, Default)]
pub struct ModelSelectPolicy;

impl ModelSelectPolicy {
    /// Score a model by work committed (and joins committed) *per
    /// attempt*.  Dividing by attempts — not launches — makes a model
    /// that keeps being chosen but can never actually fork at this site
    /// (e.g. in-order at a never-most-speculative forker) score zero
    /// instead of looking untried-and-optimistic.
    fn score(stats: &ModelStats) -> (f64, f64) {
        let attempts = stats.attempts.max(1) as f64;
        (
            stats.committed_work as f64 / attempts,
            stats.commits as f64 / attempts,
        )
    }

    fn best_model(record: &SiteRecord) -> ForkModel {
        let mut best = ForkModel::Mixed;
        let mut best_score = (f64::MIN, f64::MIN);
        // Iterate in ALL order; ties prefer the later (Mixed) model, the
        // paper's most general default.
        for model in ForkModel::ALL {
            let score = Self::score(&record.per_model[model.index()]);
            if score >= best_score {
                best_score = score;
                best = model;
            }
        }
        best
    }
}

impl GovernorPolicy for ModelSelectPolicy {
    fn name(&self) -> &'static str {
        "modelselect"
    }

    fn decide(
        &self,
        record: &mut SiteRecord,
        config: &GovernorConfig,
        _default_model: ForkModel,
    ) -> ForkDecision {
        record.decisions += 1;
        // Warm-up: give every model `min_samples` *attempts*, least-tried
        // first.  Counting attempts (not successful launches) guarantees
        // the warm-up always advances, even for a model the forking rules
        // never let launch at this site.
        let chosen = if let Some(model) = ForkModel::ALL
            .into_iter()
            .filter(|m| record.per_model[m.index()].attempts < config.min_samples)
            .min_by_key(|m| record.per_model[m.index()].attempts)
        {
            model
        } else if record.decisions.is_multiple_of(config.probe_interval) {
            // Periodic exploration so a model that got unlucky early can
            // recover; otherwise exploit the best-scoring model.
            let idx = (record.decisions / config.probe_interval) as usize % ForkModel::ALL.len();
            ForkModel::ALL[idx]
        } else {
            Self::best_model(record)
        };
        record.per_model[chosen.index()].attempts += 1;
        ForkDecision::Allow(chosen)
    }
}

/// Build the policy object configured in `config`.
pub fn build_policy(kind: PolicyKind) -> Box<dyn GovernorPolicy> {
    match kind {
        PolicyKind::Static => Box::new(StaticPolicy),
        PolicyKind::Throttle => Box::new(ThrottlePolicy),
        PolicyKind::ModelSelect => Box::new(ModelSelectPolicy),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rollback_heavy(record: &mut SiteRecord, n: usize, decay: f64) {
        for _ in 0..n {
            record.absorb(
                Some(mutls_membuf::RollbackReason::Conflict),
                false,
                false,
                0,
                50,
                0,
                ForkModel::Mixed,
                decay,
            );
        }
    }

    #[test]
    fn static_policy_always_allows_default() {
        let mut r = SiteRecord::default();
        rollback_heavy(&mut r, 50, 0.9);
        let cfg = GovernorConfig::default();
        for _ in 0..10 {
            assert_eq!(
                StaticPolicy.decide(&mut r, &cfg, ForkModel::InOrder),
                ForkDecision::Allow(ForkModel::InOrder)
            );
        }
    }

    #[test]
    fn throttle_allows_during_warmup_then_denies() {
        let mut r = SiteRecord::default();
        let cfg = GovernorConfig::with_policy(PolicyKind::Throttle);
        assert!(ThrottlePolicy
            .decide(&mut r, &cfg, ForkModel::Mixed)
            .allowed());
        rollback_heavy(&mut r, cfg.min_samples as usize, cfg.decay);
        assert_eq!(
            ThrottlePolicy.decide(&mut r, &cfg, ForkModel::Mixed),
            ForkDecision::Deny
        );
    }

    #[test]
    fn throttle_probes_every_interval() {
        let mut r = SiteRecord::default();
        let cfg = GovernorConfig::with_policy(PolicyKind::Throttle).probe_interval(4);
        rollback_heavy(&mut r, 8, cfg.decay);
        let decisions: Vec<bool> = (0..8)
            .map(|_| {
                ThrottlePolicy
                    .decide(&mut r, &cfg, ForkModel::Mixed)
                    .allowed()
            })
            .collect();
        // Deny, deny, deny, probe, deny, deny, deny, probe.
        assert_eq!(
            decisions,
            vec![false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn throttled_site_re_earns_speculation_after_commits() {
        let mut r = SiteRecord::default();
        let cfg = GovernorConfig::with_policy(PolicyKind::Throttle)
            .probe_interval(2)
            .decay(0.5);
        rollback_heavy(&mut r, 6, cfg.decay);
        assert!(!ThrottlePolicy
            .decide(&mut r, &cfg, ForkModel::Mixed)
            .allowed());
        // The site's behaviour flips to always-commit; probes feed the
        // decayed counters until the rate crosses back under the threshold.
        for _ in 0..6 {
            r.absorb(None, false, false, 50, 0, 0, ForkModel::Mixed, cfg.decay);
        }
        assert!(
            ThrottlePolicy
                .decide(&mut r, &cfg, ForkModel::Mixed)
                .allowed(),
            "rate {} should be back under {}",
            r.rollback_rate(),
            cfg.rollback_threshold
        );
    }

    #[test]
    fn throttle_reacts_to_overflow_rate_too() {
        let mut r = SiteRecord::default();
        let cfg = GovernorConfig::with_policy(PolicyKind::Throttle)
            .rollback_threshold(1.0) // only overflows can trip it
            .overflow_threshold(0.3);
        for _ in 0..4 {
            r.absorb(
                Some(mutls_membuf::RollbackReason::Overflow),
                false,
                false,
                0,
                10,
                0,
                ForkModel::Mixed,
                cfg.decay,
            );
        }
        assert_eq!(
            ThrottlePolicy.decide(&mut r, &cfg, ForkModel::Mixed),
            ForkDecision::Deny
        );
    }

    #[test]
    fn model_select_warms_up_all_models_then_exploits_the_best() {
        let mut r = SiteRecord::default();
        let cfg = GovernorConfig::with_policy(PolicyKind::ModelSelect).min_samples(2);
        // Warm-up: 2 attempts per model, least-tried first.
        let mut warmup = Vec::new();
        for _ in 0..6 {
            let ForkDecision::Allow(model) =
                ModelSelectPolicy.decide(&mut r, &cfg, ForkModel::Mixed)
            else {
                panic!("model select never denies");
            };
            r.per_model[model.index()].forks += 1;
            warmup.push(model);
        }
        for model in ForkModel::ALL {
            assert_eq!(warmup.iter().filter(|m| **m == model).count(), 2, "{model}");
            assert_eq!(r.per_model[model.index()].attempts, 2, "{model}");
        }
        // InOrder committed everything; the others wasted everything.
        r.per_model[ForkModel::InOrder.index()].commits = 2;
        r.per_model[ForkModel::InOrder.index()].committed_work = 100;
        for model in [ForkModel::OutOfOrder, ForkModel::Mixed] {
            r.per_model[model.index()].rollbacks = 2;
            r.per_model[model.index()].wasted_work = 100;
        }
        let mut exploit = 0;
        for _ in 0..cfg.probe_interval - 1 {
            if ModelSelectPolicy.decide(&mut r, &cfg, ForkModel::Mixed)
                == ForkDecision::Allow(ForkModel::InOrder)
            {
                exploit += 1;
            }
        }
        assert!(
            exploit >= (cfg.probe_interval - 2) as usize,
            "exploit = {exploit}"
        );
    }

    #[test]
    fn model_select_does_not_livelock_on_a_model_that_never_launches() {
        // Regression: at a site where in-order and out-of-order can never
        // actually fork (the forking rules reject them), the warm-up must
        // still advance and exploitation must settle on the model that
        // does launch — the site must not be starved of speculation.
        let mut r = SiteRecord::default();
        let cfg = GovernorConfig::with_policy(PolicyKind::ModelSelect)
            .min_samples(2)
            .probe_interval(16);
        let mut mixed_launches = 0u64;
        let mut decisions_after_warmup = 0u64;
        let mut mixed_after_warmup = 0u64;
        for i in 0..70 {
            let ForkDecision::Allow(model) =
                ModelSelectPolicy.decide(&mut r, &cfg, ForkModel::Mixed)
            else {
                panic!("model select never denies");
            };
            // Only Mixed ever launches at this site; the other models'
            // forks are rejected downstream, so no fork/outcome is ever
            // recorded for them.
            if model == ForkModel::Mixed {
                r.per_model[model.index()].forks += 1;
                r.absorb(None, false, false, 100, 0, 0, model, cfg.decay);
                mixed_launches += 1;
            }
            if i >= 6 {
                decisions_after_warmup += 1;
                if model == ForkModel::Mixed {
                    mixed_after_warmup += 1;
                }
            }
        }
        assert!(mixed_launches > 0, "site was starved of speculation");
        // Post-warm-up, the launching model dominates (periodic probes of
        // the dead models are allowed, but they must stay probes).
        assert!(
            mixed_after_warmup * 10 >= decisions_after_warmup * 8,
            "mixed chosen {mixed_after_warmup}/{decisions_after_warmup} post-warm-up"
        );
    }

    #[test]
    fn throttle_backs_off_leniently_on_suspected_false_sharing() {
        let cfg = GovernorConfig::with_policy(PolicyKind::Throttle).probe_interval(8);
        // Two sites with an identical 100% conflict-rollback history; at
        // one of them every conflict is suspected false sharing.
        let mut genuine = SiteRecord::default();
        let mut false_shared = SiteRecord::default();
        for _ in 0..8 {
            genuine.absorb(
                Some(mutls_membuf::RollbackReason::Conflict),
                false,
                false,
                0,
                50,
                0,
                ForkModel::Mixed,
                cfg.decay,
            );
            false_shared.absorb(
                Some(mutls_membuf::RollbackReason::Conflict),
                true,
                false,
                0,
                50,
                0,
                ForkModel::Mixed,
                cfg.decay,
            );
        }
        assert!(false_shared.false_sharing_fraction() > FALSE_SHARING_DOMINANCE);
        let allows = |r: &mut SiteRecord| {
            (0..16)
                .filter(|_| ThrottlePolicy.decide(r, &cfg, ForkModel::Mixed).allowed())
                .count()
        };
        let genuine_allows = allows(&mut genuine);
        let fs_allows = allows(&mut false_shared);
        // Both rollback rates are 1.0, above even the lenient threshold,
        // so both deny — but the false-sharing site probes twice as often.
        assert!(
            fs_allows >= genuine_allows * 2,
            "false-sharing site allowed {fs_allows}, genuine {genuine_allows}"
        );
        // Below the lenient threshold the false-sharing site flows freely
        // while the genuinely conflicting site keeps getting denied.
        for _ in 0..3 {
            genuine.absorb(None, false, false, 50, 0, 0, ForkModel::Mixed, cfg.decay);
            false_shared.absorb(None, false, false, 50, 0, 0, ForkModel::Mixed, cfg.decay);
        }
        assert!(
            genuine.rollback_rate() > cfg.rollback_threshold,
            "rate {} still above base threshold",
            genuine.rollback_rate()
        );
        assert!(!ThrottlePolicy
            .decide(&mut genuine, &cfg, ForkModel::Mixed)
            .allowed());
        assert!(ThrottlePolicy
            .decide(&mut false_shared, &cfg, ForkModel::Mixed)
            .allowed());
    }

    #[test]
    fn throttle_treats_retried_conflicts_as_cheaper_than_squashes() {
        // Two sites that conflict on every single join.  At one of them
        // the recovery engine repairs every conflict by value prediction
        // (reason None + retried), at the other every conflict squashes.
        let cfg = GovernorConfig::with_policy(PolicyKind::Throttle);
        let mut retrying = SiteRecord::default();
        let mut squashing = SiteRecord::default();
        for _ in 0..8 {
            retrying.absorb(None, false, true, 50, 0, 0, ForkModel::Mixed, cfg.decay);
            squashing.absorb(
                Some(mutls_membuf::RollbackReason::Conflict),
                false,
                false,
                0,
                50,
                0,
                ForkModel::Mixed,
                cfg.decay,
            );
        }
        assert!(retrying.retry_fraction() > 0.9);
        assert_eq!(retrying.retries, 8);
        assert_eq!(retrying.rollbacks, 0, "a retry is not a rollback");
        // The retry-repaired site keeps speculating; the squashing site
        // is shut down.
        assert!(ThrottlePolicy
            .decide(&mut retrying, &cfg, ForkModel::Mixed)
            .allowed());
        assert!(!ThrottlePolicy
            .decide(&mut squashing, &cfg, ForkModel::Mixed)
            .allowed());
    }

    #[test]
    fn policy_kind_parses_and_builds() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.label().parse::<PolicyKind>().unwrap(), kind);
            assert_eq!(build_policy(kind).name(), kind.label());
        }
        assert!("nope".parse::<PolicyKind>().is_err());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn invalid_threshold_panics() {
        let _ = GovernorConfig::default().rollback_threshold(1.5);
    }
}
