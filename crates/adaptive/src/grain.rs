//! The online adaptive-grain **control plane**: per-region grain policy
//! over the commit log's live version table.
//!
//! PR 3 made the conflict-detection grain a static knob and PR 4 produced
//! precise per-range false-sharing telemetry; this module closes the loop.
//! A [`GrainController`] consumes per-region counter snapshots
//! ([`RegionProfile`]: stamps, true conflicts, false-sharing suspects,
//! value-predict retries) and emits [`GrainAction`]s — coarsen a calm
//! region one step up the word → line → page ladder to cut log traffic,
//! re-split a region whose false-sharing suspects spike so genuine
//! parallelism stops being doomed by the grain.
//!
//! The controller is *mechanism-agnostic*: the native runtime applies its
//! actions through `CommitLog::regrain`, the discrete-event simulator
//! through its region-grain map, so one policy drives both layers and the
//! replay stays deterministic.
//!
//! Policy shape (hysteresis on both edges):
//!
//! * **Split** when a tick's conflict-plus-retry delta crosses
//!   [`GrainControlConfig::split_conflicts`] — a contended region wants
//!   exactness (a coarse grain widens every conflict's collateral, and
//!   suspects alone undercount: the first genuine word hit reclassifies
//!   a mixed doom as true sharing).  One ladder step toward the floor
//!   grain per tick, with a per-region cooldown so a single spike cannot
//!   thrash the table.
//! * **Coarsen** when a region has stamped at least
//!   [`GrainControlConfig::coarsen_stamps`] ranges over
//!   [`GrainControlConfig::calm_ticks`] consecutive conflict-free ticks —
//!   activity with no trouble means the grain is paying stamp traffic
//!   for exactness nobody needs.  One ladder step toward
//!   [`GrainControlConfig::max_grain_log2`] per decision.
//!
//! Starting coarse ([`GrainControlConfig::initial_grain_log2`], default
//! page) is the optimistic default: dense-numeric regions never pay
//! word-grain traffic at all, and the first suspect spike walks a
//! pointer-chasing region back down within a few ticks.

use std::collections::HashMap;

use mutls_membuf::{RegionId, RegionProfile, LINE_GRAIN_LOG2, PAGE_GRAIN_LOG2, WORD_GRAIN_LOG2};

/// Configuration of the adaptive-grain controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrainControlConfig {
    /// Master switch; when false the runtime keeps the static grain of
    /// `CommitLogConfig` and never builds a controller.
    pub enabled: bool,
    /// Grain every region starts at (log2 bytes), clamped by the
    /// mechanism layer into `[floor grain, region size]`.  Page by
    /// default: optimistic-coarse, split on evidence.
    pub initial_grain_log2: u32,
    /// Coarsest grain the controller may choose.
    pub max_grain_log2: u32,
    /// Commits between controller ticks (the runtime counts join/commit
    /// events, the simulator counts publishes — both deterministic in
    /// their own time base).
    pub tick_commits: u64,
    /// Conflict-plus-retry delta within one tick that triggers a
    /// re-split.  Deliberately broader than false-sharing suspects
    /// alone: a coarse grain only pays off on *calm* regions, and once a
    /// genuine word is hit the false-sharing half of a mixed doom is
    /// reclassified as true sharing — so any contention at a
    /// coarser-than-floor grain is split evidence.
    pub split_conflicts: u64,
    /// Minimum stamp delta per tick for a region to count as *active*
    /// (idle regions are left alone — no evidence either way).
    pub coarsen_stamps: u64,
    /// Consecutive active, conflict-free ticks before a coarsen step.
    pub calm_ticks: u32,
    /// Ticks a region rests after any regrain before it may move again
    /// (hysteresis against thrash).
    pub cooldown_ticks: u32,
}

impl Default for GrainControlConfig {
    fn default() -> Self {
        GrainControlConfig {
            enabled: false,
            initial_grain_log2: PAGE_GRAIN_LOG2,
            max_grain_log2: PAGE_GRAIN_LOG2,
            tick_commits: 4,
            split_conflicts: 1,
            coarsen_stamps: 8,
            calm_ticks: 2,
            cooldown_ticks: 2,
        }
    }
}

impl GrainControlConfig {
    /// The enabled controller with default tuning: start at page grain,
    /// split on the first false-sharing suspects, re-coarsen calm
    /// regions.
    pub fn adaptive() -> Self {
        GrainControlConfig {
            enabled: true,
            ..Default::default()
        }
    }

    /// Enabled, starting at the floor grain instead of page — the
    /// pessimistic-exact variant (pays word traffic until regions prove
    /// calm).
    pub fn adaptive_from_floor(floor_grain_log2: u32) -> Self {
        GrainControlConfig {
            enabled: true,
            initial_grain_log2: floor_grain_log2,
            ..Default::default()
        }
    }

    /// Set the starting grain (builder style).
    pub fn initial_grain_log2(mut self, grain_log2: u32) -> Self {
        self.initial_grain_log2 = grain_log2;
        self
    }

    /// Set the tick cadence in commits (builder style).
    pub fn tick_commits(mut self, commits: u64) -> Self {
        self.tick_commits = commits.max(1);
        self
    }
}

/// One regrain decision: move `region` to `new_grain_log2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrainAction {
    /// The region to regrain.
    pub region: RegionId,
    /// The target grain (log2 bytes).
    pub new_grain_log2: u32,
    /// True for a coarsen step, false for a re-split.
    pub coarsen: bool,
}

/// Per-region controller state: last-seen cumulative counters plus the
/// hysteresis bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct RegionState {
    stamps: u64,
    conflicts: u64,
    retries: u64,
    calm_streak: u32,
    cooldown: u32,
}

/// Summary counters of the controller's own activity, for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GrainControlStats {
    /// Controller ticks executed.
    pub ticks: u64,
    /// Coarsen steps emitted.
    pub coarsened: u64,
    /// Re-split steps emitted.
    pub split: u64,
}

/// The adaptive-grain controller (policy only; the caller applies the
/// returned actions to its mechanism layer).
#[derive(Debug)]
pub struct GrainController {
    config: GrainControlConfig,
    /// Floor grain of the underlying table — re-splits never go below it.
    floor_grain_log2: u32,
    regions: HashMap<RegionId, RegionState>,
    stats: GrainControlStats,
}

/// The grain ladder the controller walks: word → line → page, clipped to
/// `[floor, max]`.
fn step_coarser(grain_log2: u32, max: u32) -> u32 {
    let next = if grain_log2 < LINE_GRAIN_LOG2 {
        LINE_GRAIN_LOG2
    } else {
        PAGE_GRAIN_LOG2
    };
    next.min(max)
}

fn step_finer(grain_log2: u32, floor: u32) -> u32 {
    let next = if grain_log2 > LINE_GRAIN_LOG2 {
        LINE_GRAIN_LOG2
    } else {
        WORD_GRAIN_LOG2
    };
    next.max(floor)
}

impl GrainController {
    /// Build a controller for a version table whose floor grain is
    /// `floor_grain_log2`.
    pub fn new(config: GrainControlConfig, floor_grain_log2: u32) -> Self {
        GrainController {
            config,
            floor_grain_log2,
            regions: HashMap::new(),
            stats: GrainControlStats::default(),
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &GrainControlConfig {
        &self.config
    }

    /// Activity counters so far.
    pub fn stats(&self) -> GrainControlStats {
        self.stats
    }

    /// Forget all per-region state (start of a new run).
    pub fn reset(&mut self) {
        self.regions.clear();
        self.stats = GrainControlStats::default();
    }

    /// One controller tick: difference `profiles` (cumulative per-region
    /// counters, ascending by region) against the previous tick and
    /// decide regrains.  Deterministic: actions come out ascending by
    /// region id, one step per region per tick.
    pub fn tick(&mut self, profiles: &[RegionProfile]) -> Vec<GrainAction> {
        self.stats.ticks += 1;
        let mut actions = Vec::new();
        for profile in profiles {
            let state = self.regions.entry(profile.region).or_default();
            let stamps_delta = profile.stamps.saturating_sub(state.stamps);
            let conflicts_delta = profile.conflicts.saturating_sub(state.conflicts);
            let retries_delta = profile.retries.saturating_sub(state.retries);
            state.stamps = profile.stamps;
            state.conflicts = profile.conflicts;
            state.retries = profile.retries;
            if state.cooldown > 0 {
                state.cooldown -= 1;
                // Trouble during cooldown still resets the calm streak so
                // the region cannot coarsen the moment the cooldown ends.
                // (Suspects are a subset of conflicts, so the conflict
                // delta already covers them.)
                if conflicts_delta > 0 || retries_delta > 0 {
                    state.calm_streak = 0;
                }
                continue;
            }
            // Split signal: the region is contended at a coarser-than-
            // floor grain.  False-sharing suspects are the sharpest
            // evidence (the grain is *manufacturing* conflicts) and a
            // value-predict retry is a suspect that happened to be
            // cheap — but plain conflicts count too: a coarse grain only
            // pays off on calm regions, while on a contended region it
            // widens every conflict's collateral (readers of neighbour
            // words get range-doomed, and the first genuine word hit
            // reclassifies the whole doom as true sharing, hiding the
            // false-sharing half of the evidence).  Contended regions
            // therefore walk back toward exactness unconditionally.
            if conflicts_delta + retries_delta >= self.config.split_conflicts
                && profile.grain_log2 > self.floor_grain_log2
            {
                let to = step_finer(profile.grain_log2, self.floor_grain_log2);
                actions.push(GrainAction {
                    region: profile.region,
                    new_grain_log2: to,
                    coarsen: false,
                });
                state.calm_streak = 0;
                state.cooldown = self.config.cooldown_ticks;
                self.stats.split += 1;
                continue;
            }
            // Calm edge: active traffic, zero trouble.
            if conflicts_delta == 0 && retries_delta == 0 {
                if stamps_delta >= self.config.coarsen_stamps {
                    state.calm_streak += 1;
                } // idle ticks neither build nor reset the streak
            } else {
                state.calm_streak = 0;
            }
            if state.calm_streak >= self.config.calm_ticks
                && profile.grain_log2 < self.config.max_grain_log2.min(PAGE_GRAIN_LOG2)
            {
                let to = step_coarser(profile.grain_log2, self.config.max_grain_log2);
                actions.push(GrainAction {
                    region: profile.region,
                    new_grain_log2: to,
                    coarsen: true,
                });
                state.calm_streak = 0;
                state.cooldown = self.config.cooldown_ticks;
                self.stats.coarsened += 1;
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(region: RegionId, grain: u32, stamps: u64, fs: u64) -> RegionProfile {
        RegionProfile {
            region,
            grain_log2: grain,
            stamps,
            conflicts: fs,
            false_sharing: fs,
            retries: 0,
        }
    }

    #[test]
    fn calm_active_region_coarsens_up_the_ladder() {
        let mut c = GrainController::new(
            GrainControlConfig {
                enabled: true,
                initial_grain_log2: WORD_GRAIN_LOG2,
                calm_ticks: 2,
                cooldown_ticks: 0,
                ..Default::default()
            },
            WORD_GRAIN_LOG2,
        );
        // Two calm active ticks → word coarsens to line.
        assert!(c.tick(&[profile(0, WORD_GRAIN_LOG2, 10, 0)]).is_empty());
        let actions = c.tick(&[profile(0, WORD_GRAIN_LOG2, 20, 0)]);
        assert_eq!(
            actions,
            vec![GrainAction {
                region: 0,
                new_grain_log2: LINE_GRAIN_LOG2,
                coarsen: true
            }]
        );
        // Two more calm ticks at line → page; then the ladder tops out.
        assert!(c.tick(&[profile(0, LINE_GRAIN_LOG2, 30, 0)]).is_empty());
        let actions = c.tick(&[profile(0, LINE_GRAIN_LOG2, 40, 0)]);
        assert_eq!(actions[0].new_grain_log2, PAGE_GRAIN_LOG2);
        assert!(c.tick(&[profile(0, PAGE_GRAIN_LOG2, 60, 0)]).is_empty());
        assert!(c.tick(&[profile(0, PAGE_GRAIN_LOG2, 80, 0)]).is_empty());
        assert_eq!(c.stats().coarsened, 2);
        assert_eq!(c.stats().split, 0);
    }

    #[test]
    fn suspect_spike_resplits_toward_the_floor() {
        let mut c = GrainController::new(
            GrainControlConfig {
                cooldown_ticks: 0,
                ..GrainControlConfig::adaptive()
            },
            WORD_GRAIN_LOG2,
        );
        let actions = c.tick(&[profile(3, PAGE_GRAIN_LOG2, 5, 2)]);
        assert_eq!(
            actions,
            vec![GrainAction {
                region: 3,
                new_grain_log2: LINE_GRAIN_LOG2,
                coarsen: false
            }]
        );
        let actions = c.tick(&[profile(3, LINE_GRAIN_LOG2, 10, 4)]);
        assert_eq!(actions[0].new_grain_log2, WORD_GRAIN_LOG2);
        // At the floor there is nowhere finer to go.
        assert!(c.tick(&[profile(3, WORD_GRAIN_LOG2, 15, 6)]).is_empty());
        assert_eq!(c.stats().split, 2);
    }

    #[test]
    fn cooldown_and_idle_regions_hold_still() {
        let mut c = GrainController::new(
            GrainControlConfig {
                enabled: true,
                initial_grain_log2: WORD_GRAIN_LOG2,
                calm_ticks: 1,
                cooldown_ticks: 2,
                ..Default::default()
            },
            WORD_GRAIN_LOG2,
        );
        let actions = c.tick(&[profile(0, WORD_GRAIN_LOG2, 10, 0)]);
        assert_eq!(actions.len(), 1, "calm_ticks=1 coarsens immediately");
        // Cooldown: two ticks of rest even though the region stays calm.
        assert!(c.tick(&[profile(0, LINE_GRAIN_LOG2, 20, 0)]).is_empty());
        assert!(c.tick(&[profile(0, LINE_GRAIN_LOG2, 30, 0)]).is_empty());
        // Idle ticks (no stamp delta) never build a calm streak.
        assert!(c.tick(&[profile(0, LINE_GRAIN_LOG2, 30, 0)]).is_empty());
        // Active again → moves again.
        let actions = c.tick(&[profile(0, LINE_GRAIN_LOG2, 45, 0)]);
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].new_grain_log2, PAGE_GRAIN_LOG2);
    }

    #[test]
    fn retries_count_as_split_evidence_and_reset_calm() {
        // A region whose conflicts keep being repaired by value-predict
        // retries is still false-sharing at the current grain: it must
        // split, not coarsen.
        let mut c = GrainController::new(
            GrainControlConfig {
                cooldown_ticks: 0,
                ..GrainControlConfig::adaptive()
            },
            WORD_GRAIN_LOG2,
        );
        let p = RegionProfile {
            region: 7,
            grain_log2: PAGE_GRAIN_LOG2,
            stamps: 100,
            conflicts: 0,
            false_sharing: 0,
            retries: 3,
        };
        let actions = c.tick(&[p]);
        assert_eq!(actions.len(), 1);
        assert!(!actions[0].coarsen);
    }

    #[test]
    fn reset_forgets_state() {
        let mut c = GrainController::new(GrainControlConfig::adaptive(), WORD_GRAIN_LOG2);
        c.tick(&[profile(0, PAGE_GRAIN_LOG2, 5, 2)]);
        assert!(c.stats().ticks > 0);
        c.reset();
        assert_eq!(c.stats(), GrainControlStats::default());
    }

    #[test]
    fn config_presets() {
        assert!(!GrainControlConfig::default().enabled);
        let a = GrainControlConfig::adaptive();
        assert!(a.enabled);
        assert_eq!(a.initial_grain_log2, PAGE_GRAIN_LOG2);
        let f = GrainControlConfig::adaptive_from_floor(WORD_GRAIN_LOG2);
        assert_eq!(f.initial_grain_log2, WORD_GRAIN_LOG2);
        assert_eq!(
            GrainControlConfig::adaptive().tick_commits(0).tick_commits,
            1,
            "cadence clamps to at least one commit"
        );
    }
}
