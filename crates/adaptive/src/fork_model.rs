//! Forking models (paper §II).
//!
//! A forking model decides *which* threads are allowed to launch further
//! speculative threads:
//!
//! * **In-order** — only the most recently speculated (most speculative)
//!   thread may fork.  Natural for loop-level speculation; N threads can
//!   parallelize a loop of N iterations, but a rollback cascades into every
//!   later thread.
//! * **Out-of-order** — only the non-speculative thread may fork.  Natural
//!   for method-level speculation, but loop parallelism is bounded by two
//!   threads because speculative threads cannot speculate further.
//! * **Mixed (tree)** — every thread may fork, forming a tree of threads;
//!   children of one thread follow out-of-order order among themselves and
//!   each subtree covers a contiguous interval of sequential execution.
//!   Rollback cascades are confined to the offending subtree.

use std::fmt;
use std::str::FromStr;

/// Which threads may fork new speculative threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ForkModel {
    /// Only the most speculative thread may fork.
    InOrder,
    /// Only the non-speculative thread may fork.
    OutOfOrder,
    /// Every thread may fork (tree-form mixed model, the paper's default).
    #[default]
    Mixed,
}

impl ForkModel {
    /// All models, in the order used by the paper's figure 10.
    pub const ALL: [ForkModel; 3] = [ForkModel::InOrder, ForkModel::OutOfOrder, ForkModel::Mixed];

    /// Decide whether a thread may fork under this model.
    ///
    /// * `forker_is_speculative` — whether the requesting thread is itself
    ///   speculative.
    /// * `forker_is_most_speculative` — whether the requesting thread is
    ///   the most recently speculated thread still in flight (vacuously
    ///   true for the non-speculative thread when nothing is in flight).
    pub fn allows_fork(
        self,
        forker_is_speculative: bool,
        forker_is_most_speculative: bool,
    ) -> bool {
        match self {
            ForkModel::Mixed => true,
            ForkModel::OutOfOrder => !forker_is_speculative,
            ForkModel::InOrder => forker_is_most_speculative,
        }
    }

    /// Index of this model within [`ForkModel::ALL`] (used by per-site
    /// per-model statistics in the adaptive governor).
    pub fn index(self) -> usize {
        match self {
            ForkModel::InOrder => 0,
            ForkModel::OutOfOrder => 1,
            ForkModel::Mixed => 2,
        }
    }

    /// Short label used in experiment output (matches the paper's figure
    /// legends).
    pub fn label(self) -> &'static str {
        match self {
            ForkModel::InOrder => "inorder",
            ForkModel::OutOfOrder => "outoforder",
            ForkModel::Mixed => "mixed",
        }
    }
}

impl fmt::Display for ForkModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ForkModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "inorder" | "in-order" | "in_order" => Ok(ForkModel::InOrder),
            "outoforder" | "out-of-order" | "out_of_order" => Ok(ForkModel::OutOfOrder),
            "mixed" | "tree" => Ok(ForkModel::Mixed),
            other => Err(format!("unknown fork model: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_allows_everyone() {
        assert!(ForkModel::Mixed.allows_fork(false, true));
        assert!(ForkModel::Mixed.allows_fork(true, false));
        assert!(ForkModel::Mixed.allows_fork(true, true));
    }

    #[test]
    fn out_of_order_only_nonspeculative() {
        assert!(ForkModel::OutOfOrder.allows_fork(false, true));
        assert!(ForkModel::OutOfOrder.allows_fork(false, false));
        assert!(!ForkModel::OutOfOrder.allows_fork(true, true));
    }

    #[test]
    fn in_order_only_most_speculative() {
        assert!(ForkModel::InOrder.allows_fork(false, true));
        assert!(ForkModel::InOrder.allows_fork(true, true));
        assert!(!ForkModel::InOrder.allows_fork(true, false));
        assert!(!ForkModel::InOrder.allows_fork(false, false));
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for m in ForkModel::ALL {
            assert_eq!(m.label().parse::<ForkModel>().unwrap(), m);
        }
        assert!("bogus".parse::<ForkModel>().is_err());
        assert_eq!("tree".parse::<ForkModel>().unwrap(), ForkModel::Mixed);
    }

    #[test]
    fn default_is_mixed() {
        assert_eq!(ForkModel::default(), ForkModel::Mixed);
    }
}
