//! Per-fork-site profiling: a lock-striped registry of speculation
//! statistics keyed by fork-site ID.
//!
//! Every fork point in a workload carries a stable 32-bit *site ID* (the
//! `point` argument of `TlsContext::fork`).  The [`SiteProfiler`]
//! accumulates, per site, how speculation at that site actually went —
//! commits, rollbacks, buffer overflows, committed vs. wasted work and
//! stall time — so a [`GovernorPolicy`](crate::GovernorPolicy) can adapt
//! future fork decisions.
//!
//! The registry is sharded dashmap-style: the site ID hashes to one of
//! [`SHARD_COUNT`] shards, each an independently locked map, so
//! concurrent threads profiling different sites rarely contend.  Each
//! site's record sits behind its own mutex (reached through an `Arc`), so
//! the shard lock is held only for the map lookup, never while a record
//! is updated.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use mutls_membuf::RollbackReason;

use crate::fork_model::ForkModel;

/// Identifier of one fork point (the `point` of `TlsContext::fork`).
pub type SiteId = u32;

/// Number of lock stripes; a power of two so the shard index is a mask.
pub const SHARD_COUNT: usize = 16;

/// Per-model accumulators used by the model-selection policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Decisions that selected this model (whether or not the fork then
    /// launched); maintained by the model-selection policy.
    pub attempts: u64,
    /// Speculative threads launched under this model.
    pub forks: u64,
    /// Joins that committed.
    pub commits: u64,
    /// Joins that rolled back.
    pub rollbacks: u64,
    /// Work that committed (time units of the recording runtime).
    pub committed_work: u64,
    /// Work that was discarded.
    pub wasted_work: u64,
}

impl ModelStats {
    /// Fraction of this model's work that committed (1.0 with no samples,
    /// so untried models look optimistic rather than hopeless).
    pub fn efficiency(&self) -> f64 {
        let total = self.committed_work + self.wasted_work;
        if total == 0 {
            return 1.0;
        }
        self.committed_work as f64 / total as f64
    }

    /// Fraction of joins that committed (1.0 with no samples).
    pub fn commit_rate(&self) -> f64 {
        let joins = self.commits + self.rollbacks;
        if joins == 0 {
            return 1.0;
        }
        self.commits as f64 / joins as f64
    }
}

/// Mutable per-site accumulator handed to policies.
#[derive(Debug, Clone, Default)]
pub struct SiteRecord {
    /// Speculative threads actually launched from this site.
    pub forks: u64,
    /// Fork requests suppressed by the governor.
    pub throttled: u64,
    /// Children that validated and committed.
    pub commits: u64,
    /// Children that rolled back (any reason).
    pub rollbacks: u64,
    /// Rollbacks whose reason was a buffer overflow.
    pub overflows: u64,
    /// Rollbacks caused by a real cross-thread dependence violation.
    pub conflicts: u64,
    /// Conflict rollbacks classified as suspected false sharing (the
    /// tracking grain, not genuine sharing, most likely caused them).
    pub false_sharing: u64,
    /// Commits repaired by value-predict-and-retry (a subset of
    /// `commits`, never counted in `rollbacks`): the conflict cost one
    /// re-validation pass instead of a squash-and-re-execute.
    pub retries: u64,
    /// Rollbacks injected by the sensitivity experiment.
    pub injected: u64,
    /// Work (ns native / cycles simulated) that committed.
    pub committed_work: u64,
    /// Work that was rolled back and discarded.
    pub wasted_work: u64,
    /// Stall (idle) time attributed to this site's children.
    pub stall: u64,
    /// Exponentially decayed commit count (recency-weighted).
    pub hot_commits: f64,
    /// Exponentially decayed rollback count.
    pub hot_rollbacks: f64,
    /// Exponentially decayed overflow count.
    pub hot_overflows: f64,
    /// Exponentially decayed suspected-false-sharing count.
    pub hot_false_sharing: f64,
    /// Exponentially decayed retry count (retries also feed
    /// `hot_commits`: a retried conflict is a success, not a squash).
    pub hot_retries: f64,
    /// Per-fork-model accumulators, indexed by [`ForkModel::index`].
    pub per_model: [ModelStats; 3],
    /// Consecutive throttle denials since the last probe (throttle policy).
    pub denied_streak: u64,
    /// Monotone count of governor decisions at this site.
    pub decisions: u64,
    /// Live commit-log grain (log2 bytes) most recently observed for this
    /// site's traffic (0 = never observed) — what the grain controller
    /// converged to for the data this site touches.
    pub grain_log2: u32,
}

impl SiteRecord {
    /// Joined children so far (commits + rollbacks).
    pub fn samples(&self) -> u64 {
        self.commits + self.rollbacks
    }

    /// Recency-weighted rollback rate in `[0, 1]` (0 with no samples).
    pub fn rollback_rate(&self) -> f64 {
        let total = self.hot_commits + self.hot_rollbacks;
        if total <= 0.0 {
            return 0.0;
        }
        self.hot_rollbacks / total
    }

    /// Recency-weighted buffer-overflow rate in `[0, 1]`.
    pub fn overflow_rate(&self) -> f64 {
        let total = self.hot_commits + self.hot_rollbacks;
        if total <= 0.0 {
            return 0.0;
        }
        self.hot_overflows / total
    }

    /// Recency-weighted fraction of rollbacks that were suspected false
    /// sharing (0 with no rollbacks): when this dominates, the site's
    /// problem is the commit-log grain, not genuine sharing, and the
    /// throttle policy backs off more leniently.
    pub fn false_sharing_fraction(&self) -> f64 {
        if self.hot_rollbacks <= 0.0 {
            return 0.0;
        }
        (self.hot_false_sharing / self.hot_rollbacks).min(1.0)
    }

    /// Recency-weighted fraction of *commits* that needed a value-predict
    /// retry (0 with no commits).  A high fraction means the site keeps
    /// conflicting but the conflicts are cheap — information for cost
    /// models, not a reason to throttle.
    pub fn retry_fraction(&self) -> f64 {
        if self.hot_commits <= 0.0 {
            return 0.0;
        }
        (self.hot_retries / self.hot_commits).min(1.0)
    }

    /// Fold one join outcome into the record.  `reason` carries the cause
    /// when the child rolled back (`None` = committed), `false_sharing`
    /// whether a conflict was classified as suspected false sharing, and
    /// `retried` whether a commit was repaired by value prediction (a
    /// retried conflict counts as a *commit* — the policies must treat it
    /// as far cheaper than a squash).  `decay` is the exponential
    /// forgetting factor applied to the recency-weighted counters before
    /// the new sample is added, so old behaviour fades and a throttled
    /// site can re-earn speculation.
    #[allow(clippy::too_many_arguments)]
    pub fn absorb(
        &mut self,
        reason: Option<RollbackReason>,
        false_sharing: bool,
        retried: bool,
        work: u64,
        wasted: u64,
        stall: u64,
        model: ForkModel,
        decay: f64,
    ) {
        self.hot_commits *= decay;
        self.hot_rollbacks *= decay;
        self.hot_overflows *= decay;
        self.hot_false_sharing *= decay;
        self.hot_retries *= decay;
        let m = &mut self.per_model[model.index()];
        match reason {
            None => {
                self.commits += 1;
                self.hot_commits += 1.0;
                self.committed_work += work;
                if retried {
                    self.retries += 1;
                    self.hot_retries += 1.0;
                }
                m.commits += 1;
                m.committed_work += work;
            }
            Some(reason) => {
                self.rollbacks += 1;
                self.hot_rollbacks += 1.0;
                self.wasted_work += wasted;
                m.rollbacks += 1;
                m.wasted_work += wasted;
                match reason {
                    RollbackReason::Overflow => {
                        self.overflows += 1;
                        self.hot_overflows += 1.0;
                    }
                    RollbackReason::Conflict => {
                        self.conflicts += 1;
                        if false_sharing {
                            self.false_sharing += 1;
                            self.hot_false_sharing += 1.0;
                        }
                    }
                    RollbackReason::Injected => self.injected += 1,
                    RollbackReason::Other => {}
                }
            }
        }
        self.stall += stall;
    }
}

/// Immutable snapshot of one site, exposed in `RunReport` tables.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SiteProfile {
    /// The fork-site ID.
    pub site: SiteId,
    /// Speculative threads launched.
    pub forks: u64,
    /// Fork requests suppressed by the governor.
    pub throttled: u64,
    /// Committed children.
    pub commits: u64,
    /// Rolled-back children.
    pub rollbacks: u64,
    /// Buffer-overflow rollbacks.
    pub overflows: u64,
    /// Real dependence-violation rollbacks.
    pub conflicts: u64,
    /// Conflicts classified as suspected false sharing.
    pub false_sharing: u64,
    /// Commits repaired by value-predict-and-retry.
    pub retries: u64,
    /// Injected (sensitivity-mode) rollbacks.
    pub injected: u64,
    /// Committed work.
    pub committed_work: u64,
    /// Discarded work.
    pub wasted_work: u64,
    /// Stall time of this site's children.
    pub stall: u64,
    /// Recency-weighted rollback rate at snapshot time.
    pub rollback_rate: f64,
    /// Live commit-log grain (log2 bytes) last observed for this site's
    /// traffic (0 = never observed) — the grain-controller convergence
    /// column of the harness site tables.
    pub grain_log2: u32,
}

impl SiteProfile {
    fn from_record(site: SiteId, record: &SiteRecord) -> Self {
        SiteProfile {
            site,
            forks: record.forks,
            throttled: record.throttled,
            commits: record.commits,
            rollbacks: record.rollbacks,
            overflows: record.overflows,
            conflicts: record.conflicts,
            false_sharing: record.false_sharing,
            retries: record.retries,
            injected: record.injected,
            committed_work: record.committed_work,
            wasted_work: record.wasted_work,
            stall: record.stall,
            rollback_rate: record.rollback_rate(),
            grain_log2: record.grain_log2,
        }
    }
}

/// Lock-striped registry of [`SiteRecord`]s.
#[derive(Debug, Default)]
pub struct SiteProfiler {
    shards: [RwLock<HashMap<SiteId, Arc<Mutex<SiteRecord>>>>; SHARD_COUNT],
}

/// Fibonacci-hash the site ID into a shard index.
fn shard_of(site: SiteId) -> usize {
    let h = (site as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 60) as usize & (SHARD_COUNT - 1)
}

impl SiteProfiler {
    /// Create an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    fn cell(&self, site: SiteId) -> Arc<Mutex<SiteRecord>> {
        let shard = &self.shards[shard_of(site)];
        if let Some(cell) = shard.read().get(&site) {
            return Arc::clone(cell);
        }
        let mut map = shard.write();
        Arc::clone(map.entry(site).or_default())
    }

    /// Run `f` with exclusive access to the site's record, creating the
    /// record on first touch.
    pub fn with_site<R>(&self, site: SiteId, f: impl FnOnce(&mut SiteRecord) -> R) -> R {
        let cell = self.cell(site);
        let mut record = cell.lock();
        f(&mut record)
    }

    /// Number of sites profiled so far.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no site has been touched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot every site, sorted by site ID.
    ///
    /// Lock discipline (the >64-CPU scale path): shard locks are taken
    /// **one at a time** and held only long enough to clone the `Arc`s out
    /// of the map — never while a record mutex is locked, and never more
    /// than one shard at once.  Hot-path threads recording outcomes on
    /// other shards (or on this shard's records, whose mutexes are
    /// outside the shard lock) are therefore not serialized behind a
    /// snapshot, which runs concurrently with profiling at every point.
    pub fn snapshot(&self) -> Vec<SiteProfile> {
        let mut rows: Vec<SiteProfile> = Vec::new();
        for shard in &self.shards {
            let cells: Vec<(SiteId, Arc<Mutex<SiteRecord>>)> = {
                let map = shard.read();
                map.iter()
                    .map(|(site, cell)| (*site, Arc::clone(cell)))
                    .collect()
            };
            // Shard lock released: lock each record individually.
            for (site, cell) in cells {
                let record = cell.lock();
                rows.push(SiteProfile::from_record(site, &record));
            }
        }
        rows.sort_by_key(|p| p.site);
        rows
    }

    /// Drop every record (start of a new run).
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_created_on_first_touch() {
        let p = SiteProfiler::new();
        assert!(p.is_empty());
        p.with_site(7, |r| r.forks += 1);
        p.with_site(7, |r| r.forks += 1);
        p.with_site(9, |r| r.forks += 1);
        assert_eq!(p.len(), 2);
        assert_eq!(p.with_site(7, |r| r.forks), 2);
    }

    #[test]
    fn absorb_tracks_rates_and_decay() {
        let mut r = SiteRecord::default();
        for _ in 0..4 {
            r.absorb(
                Some(RollbackReason::Conflict),
                false,
                false,
                0,
                100,
                0,
                ForkModel::Mixed,
                0.5,
            );
        }
        assert_eq!(r.rollbacks, 4);
        assert_eq!(r.conflicts, 4);
        assert_eq!(r.wasted_work, 400);
        assert!(r.rollback_rate() > 0.99);
        // Commits push the decayed rate down geometrically.
        for _ in 0..4 {
            r.absorb(None, false, false, 100, 0, 0, ForkModel::Mixed, 0.5);
        }
        assert!(r.rollback_rate() < 0.1, "rate = {}", r.rollback_rate());
        assert_eq!(r.samples(), 8);
    }

    #[test]
    fn rollback_reasons_are_counted_separately() {
        let mut r = SiteRecord::default();
        r.absorb(
            Some(RollbackReason::Overflow),
            false,
            false,
            0,
            10,
            0,
            ForkModel::InOrder,
            0.9,
        );
        r.absorb(
            Some(RollbackReason::Conflict),
            false,
            false,
            0,
            10,
            0,
            ForkModel::InOrder,
            0.9,
        );
        r.absorb(
            Some(RollbackReason::Injected),
            false,
            false,
            0,
            10,
            0,
            ForkModel::InOrder,
            0.9,
        );
        assert_eq!(r.overflows, 1);
        assert_eq!(r.conflicts, 1);
        assert_eq!(r.injected, 1);
        assert_eq!(r.rollbacks, 3);
        assert!(r.overflow_rate() > 0.0 && r.overflow_rate() < r.rollback_rate() + 1e-12);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let p = SiteProfiler::new();
        for site in [44u32, 2, 17, 300] {
            p.with_site(site, |r| {
                r.forks = site as u64;
                r.absorb(None, false, false, 5, 0, 1, ForkModel::Mixed, 0.9);
            });
        }
        let rows = p.snapshot();
        assert_eq!(rows.len(), 4);
        let sites: Vec<u32> = rows.iter().map(|r| r.site).collect();
        assert_eq!(sites, vec![2, 17, 44, 300]);
        assert!(rows.iter().all(|r| r.commits == 1 && r.stall == 1));
        p.reset();
        assert!(p.snapshot().is_empty());
    }

    #[test]
    fn profiler_is_safe_under_concurrent_updates() {
        let p = std::sync::Arc::new(SiteProfiler::new());
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let p = std::sync::Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u32 {
                    p.with_site(i % 13 + t % 2, |r| r.forks += 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = p.snapshot().iter().map(|r| r.forks).sum();
        assert_eq!(total, 8 * 1000);
    }

    #[test]
    fn model_stats_rates_default_optimistic() {
        let m = ModelStats::default();
        assert_eq!(m.efficiency(), 1.0);
        assert_eq!(m.commit_rate(), 1.0);
    }
}
