//! The [`Governor`]: the profiler and the configured policy behind one
//! thread-safe facade the runtime and the simulator both consult.

use mutls_membuf::{RollbackReason, SpecFailure};

use crate::fork_model::ForkModel;
use crate::policy::{build_policy, ForkDecision, GovernorConfig, GovernorPolicy};
use crate::site::{SiteId, SiteProfile, SiteProfiler};

/// Everything the runtime reports back about one joined (or discarded)
/// speculative child.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteOutcome {
    /// True when the child validated and committed.
    pub committed: bool,
    /// Failure reason when the child rolled back.
    pub failure: Option<SpecFailure>,
    /// True when a conflict rollback was classified as suspected false
    /// sharing (grain-induced, not genuine sharing).
    pub false_sharing: bool,
    /// True when the child's conflict was repaired by value-predict-and-
    /// retry: the join *committed* (`committed` is true) at the cost of a
    /// re-validation pass instead of a re-execution.  Policies treat this
    /// as a success, not a squash.
    pub retried: bool,
    /// Useful work the child contributed (ns native / cycles simulated).
    pub work: u64,
    /// Work discarded by the rollback.
    pub wasted_work: u64,
    /// Idle/stall time of the child.
    pub stall: u64,
    /// Forking model the child was launched under.
    pub model: ForkModel,
    /// Live commit-log grain (log2 bytes) the child's traffic ran at —
    /// the grain of its conflicting (or, for commits, written) region at
    /// join time; 0 = not observed.  Lets the per-site tables show what
    /// the grain controller converged to for each site's data.
    pub grain_log2: u32,
}

impl SiteOutcome {
    /// A committed child.
    pub fn committed(work: u64, stall: u64, model: ForkModel) -> Self {
        SiteOutcome {
            committed: true,
            failure: None,
            false_sharing: false,
            retried: false,
            work,
            wasted_work: 0,
            stall,
            model,
            grain_log2: 0,
        }
    }

    /// A rolled-back child.
    pub fn rolled_back(reason: SpecFailure, wasted: u64, stall: u64, model: ForkModel) -> Self {
        SiteOutcome {
            committed: false,
            failure: Some(reason),
            false_sharing: false,
            retried: false,
            work: 0,
            wasted_work: wasted,
            stall,
            model,
            grain_log2: 0,
        }
    }

    /// Mark a rolled-back outcome as suspected false sharing (builder
    /// style).
    pub fn with_false_sharing(mut self, false_sharing: bool) -> Self {
        self.false_sharing = false_sharing;
        self
    }

    /// Mark a committed outcome as a value-predict retry (builder style).
    pub fn with_retry(mut self, retried: bool) -> Self {
        self.retried = retried;
        self
    }

    /// Record the live grain the child's traffic ran at (builder style).
    pub fn with_grain(mut self, grain_log2: u32) -> Self {
        self.grain_log2 = grain_log2;
        self
    }

    /// The coarse cause class of this outcome (`None` = committed).
    pub fn reason(&self) -> Option<RollbackReason> {
        self.failure.map(RollbackReason::from)
    }
}

/// The adaptive speculation governor.
pub struct Governor {
    config: GovernorConfig,
    profiler: SiteProfiler,
    policy: Box<dyn GovernorPolicy>,
}

impl std::fmt::Debug for Governor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Governor")
            .field("config", &self.config)
            .field("policy", &self.policy.name())
            .field("sites", &self.profiler.len())
            .finish()
    }
}

impl Governor {
    /// Build a governor running the policy named in `config`.
    pub fn new(config: GovernorConfig) -> Self {
        Governor {
            policy: build_policy(config.policy),
            profiler: SiteProfiler::new(),
            config,
        }
    }

    /// The governor's configuration.
    pub fn config(&self) -> &GovernorConfig {
        &self.config
    }

    /// Name of the active policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Decide whether fork-site `site` may speculate right now, and under
    /// which model.  A denial is recorded in the site's profile.
    pub fn decide(&self, site: SiteId, default_model: ForkModel) -> ForkDecision {
        self.profiler.with_site(site, |record| {
            let decision = self.policy.decide(record, &self.config, default_model);
            if !decision.allowed() {
                record.throttled += 1;
            }
            decision
        })
    }

    /// Record that a speculative thread was actually launched from `site`.
    pub fn record_fork(&self, site: SiteId, model: ForkModel) {
        self.profiler.with_site(site, |record| {
            record.forks += 1;
            record.per_model[model.index()].forks += 1;
        });
    }

    /// Record the outcome of a child launched from `site`.
    pub fn record_outcome(&self, site: SiteId, outcome: &SiteOutcome) {
        let decay = self.config.decay;
        self.profiler.with_site(site, |record| {
            if outcome.grain_log2 != 0 {
                record.grain_log2 = outcome.grain_log2;
            }
            record.absorb(
                outcome.reason(),
                outcome.false_sharing,
                outcome.retried,
                outcome.work,
                outcome.wasted_work,
                outcome.stall,
                outcome.model,
                decay,
            );
        });
    }

    /// Snapshot every profiled site, sorted by site ID.
    pub fn snapshot(&self) -> Vec<SiteProfile> {
        self.profiler.snapshot()
    }

    /// Forget all profiles (start of a new speculative region run).
    pub fn reset(&self) {
        self.profiler.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    fn drive(governor: &Governor, site: SiteId, committed: bool, rounds: usize) -> (u64, u64) {
        let mut allowed = 0;
        let mut denied = 0;
        for _ in 0..rounds {
            match governor.decide(site, ForkModel::Mixed) {
                ForkDecision::Allow(model) => {
                    allowed += 1;
                    governor.record_fork(site, model);
                    let outcome = if committed {
                        SiteOutcome::committed(100, 5, model)
                    } else {
                        SiteOutcome::rolled_back(SpecFailure::ReadConflict, 100, 5, model)
                    };
                    governor.record_outcome(site, &outcome);
                }
                ForkDecision::Deny => denied += 1,
            }
        }
        (allowed, denied)
    }

    #[test]
    fn static_governor_never_denies() {
        let governor = Governor::new(GovernorConfig::default());
        let (allowed, denied) = drive(&governor, 1, false, 100);
        assert_eq!((allowed, denied), (100, 0));
        let profile = &governor.snapshot()[0];
        assert_eq!(profile.rollbacks, 100);
        assert_eq!(profile.throttled, 0);
    }

    #[test]
    fn throttle_governor_suppresses_bad_site_but_not_good_site() {
        let governor = Governor::new(GovernorConfig::with_policy(PolicyKind::Throttle));
        let (bad_allowed, bad_denied) = drive(&governor, 1, false, 100);
        let (good_allowed, good_denied) = drive(&governor, 2, true, 100);
        assert!(
            bad_denied > bad_allowed * 5,
            "bad site: {bad_allowed} allowed, {bad_denied} denied"
        );
        assert_eq!((good_allowed, good_denied), (100, 0));
        let rows = governor.snapshot();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].throttled > 0);
        assert_eq!(rows[1].throttled, 0);
        assert!(
            rows[0].wasted_work < 100 * 100,
            "throttling caps wasted work"
        );
    }

    #[test]
    fn outcomes_accumulate_work_and_stall() {
        let governor = Governor::new(GovernorConfig::default());
        governor.record_fork(9, ForkModel::InOrder);
        governor.record_outcome(9, &SiteOutcome::committed(40, 7, ForkModel::InOrder));
        governor.record_outcome(
            9,
            &SiteOutcome::rolled_back(SpecFailure::BufferOverflow, 13, 2, ForkModel::InOrder),
        );
        governor.record_outcome(
            9,
            &SiteOutcome::rolled_back(SpecFailure::ReadConflict, 4, 1, ForkModel::InOrder),
        );
        let p = &governor.snapshot()[0];
        assert_eq!(p.committed_work, 40);
        assert_eq!(p.wasted_work, 17);
        assert_eq!(p.stall, 10);
        assert_eq!(p.overflows, 1);
        assert_eq!(p.conflicts, 1);
        assert_eq!(p.injected, 0);
        governor.reset();
        assert!(governor.snapshot().is_empty());
    }
}
