//! # mutls-adaptive — adaptive speculation governor for MUTLS
//!
//! MUTLS's headline idea is *mixing* forking models to fit each program's
//! speculation structure, but a static configuration still speculates
//! unconditionally — even at fork sites that always roll back.  This crate
//! adds the feedback loop:
//!
//! * [`SiteProfiler`] — a lock-striped (dashmap-style) registry keyed by
//!   fork-site ID, accumulating commits, rollbacks, buffer overflows,
//!   stall time and speculative work per site.
//! * [`GovernorPolicy`] — pluggable fork-decision policies:
//!   [`StaticPolicy`] (the seed's unconditional behaviour),
//!   [`ThrottlePolicy`] (suppress unprofitable sites, with exponential
//!   decay and probe forks so sites can re-earn speculation) and
//!   [`ModelSelectPolicy`] (per-site choice among the three forking
//!   models).
//! * [`Governor`] — the thread-safe facade `mutls-runtime`'s
//!   `ThreadManager` and `mutls-simcpu`'s scheduler consult before
//!   granting a speculative CPU, and report join outcomes back to.
//! * [`GrainController`] — the online adaptive-grain control plane: it
//!   consumes the commit log's per-region telemetry (stamps, conflicts,
//!   false-sharing suspects, retries) and decides per-region regrains
//!   (coarsen calm regions word → line → page, re-split on suspect
//!   spikes), applied through `CommitLog::regrain` natively and through
//!   the simulator's region-grain map in replay.
//!
//! The [`ForkModel`] type lives here (re-exported by `mutls-runtime` for
//! compatibility) so policies can choose models without a dependency
//! cycle.
//!
//! ```
//! use mutls_adaptive::{ForkDecision, ForkModel, Governor, GovernorConfig, PolicyKind, SiteOutcome};
//! use mutls_membuf::SpecFailure;
//!
//! let governor = Governor::new(GovernorConfig::with_policy(PolicyKind::Throttle));
//! // Site 1 keeps rolling back...
//! for _ in 0..8 {
//!     if let ForkDecision::Allow(model) = governor.decide(1, ForkModel::Mixed) {
//!         governor.record_fork(1, model);
//!         governor.record_outcome(
//!             1,
//!             &SiteOutcome::rolled_back(SpecFailure::ReadConflict, 100, 0, model),
//!         );
//!     }
//! }
//! // ...so the governor stops granting it speculative CPUs.
//! assert_eq!(governor.decide(1, ForkModel::Mixed), ForkDecision::Deny);
//! ```

#![warn(missing_docs)]

pub mod fork_model;
pub mod governor;
pub mod grain;
pub mod policy;
pub mod site;

pub use fork_model::ForkModel;
pub use governor::{Governor, SiteOutcome};
pub use grain::{GrainAction, GrainControlConfig, GrainControlStats, GrainController};
pub use policy::{
    build_policy, ForkDecision, GovernorConfig, GovernorPolicy, ModelSelectPolicy, PolicyKind,
    StaticPolicy, ThrottlePolicy, FALSE_SHARING_DOMINANCE,
};
pub use site::{ModelStats, SiteId, SiteProfile, SiteProfiler, SiteRecord, SHARD_COUNT};
