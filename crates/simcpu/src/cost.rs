//! Cost model of the discrete-event multicore simulator.
//!
//! The simulator charges *virtual cycles* for work, memory operations and
//! every runtime phase the paper's breakdown figures report (find CPU,
//! fork, join, validation, commit, finalize).  Absolute values are not
//! meant to match the authors' AMD Opteron testbed; they are chosen so
//! that the *relative* behaviour — computation- vs. memory-intensive
//! scaling, speculative-path overhead composition, fork-model crossovers —
//! reproduces the shape of the paper's evaluation.

use serde::{Deserialize, Serialize};

/// Per-operation virtual-cycle costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles per abstract work unit charged via `TlsContext::work`.
    pub work_unit: u64,
    /// Cycles per load on the non-speculative thread.
    pub load: u64,
    /// Cycles per store on the non-speculative thread.
    pub store: u64,
    /// Extra cycles per load/store when executed speculatively (software
    /// buffering overhead: hashing into the word map).
    pub buffered_access_overhead: u64,
    /// Cycles to scan for an idle CPU at a fork point.
    pub find_cpu: u64,
    /// Cycles to set up and dispatch a speculative thread (saving live
    /// locals, initializing `ThreadData`).
    pub fork: u64,
    /// Fixed cycles of synchronization bookkeeping at a join point.
    pub join: u64,
    /// Cycles per read-set word during validation (value comparison).
    pub validate_per_word: u64,
    /// Cycles per read-set *range* spent probing the shared commit log
    /// for a later-version stamp (the dependence-violation check that
    /// replaces injected rollbacks with real conflict detection).  The
    /// log is range-granular, so coarser grains probe fewer entries —
    /// this is the grain-dependent half of the validation cost.
    pub validate_log_lookup: u64,
    /// Cycles per write-set word during commit.
    pub commit_per_word: u64,
    /// Cycles to acquire and release one commit-log shard lock while
    /// publishing a write-set (charged per shard the batch touches);
    /// models the per-shard lock contention the sharded log trades
    /// against the old single global commit lock.  Charged only when the
    /// commit log runs in **locked** mode — the lock-free CAS path
    /// charges [`cas_retry`](Self::cas_retry) per contender instead.
    pub commit_lock: u64,
    /// Cycles per **CAS retry** on the lock-free commit path: one failed
    /// `compare_exchange` (cache-line bounce plus the re-read).  Charged
    /// per same-shard contender of the committing batch, so disjoint
    /// committers pay nothing — the contention term that replaces
    /// [`commit_lock`](Self::commit_lock) when the log is lock-free.
    /// Cheaper than a lock handoff: a retry is one coherence miss, not a
    /// syscall-prone wait.
    pub cas_retry: u64,
    /// Cycles per buffered word during finalization (buffer clearing).
    pub finalize_per_word: u64,
    /// Cycles a speculative thread needs from creation until it starts
    /// useful work (thread wake-up latency).
    pub spawn_latency: u64,
    /// Cycles per read-set word of a value-predict **retry**: the second
    /// validation pass that re-reads the conflicting words from main
    /// memory and re-stamps them.  The retry's total cost replaces a full
    /// squash-and-re-execute — the cheapest rung of the recovery ladder.
    pub retry_per_word: u64,
    /// Cycles per **version-ring probe** under mvcc validation: one
    /// packed-atomic load plus the footprint test that proves a later
    /// commit missed every word the thread read.  Charged per precise
    /// pass — cheaper than [`retry_per_word`](Self::retry_per_word)
    /// because no main-memory value re-read happens at all.
    pub ring_probe: u64,
    /// Cycles a committing writer spends per thread it **dooms** through
    /// the reader registry (enumerate the range's mask, set the doom
    /// flag).  Buys back the doomed thread's remaining conflict-window
    /// work, the middle rung of the recovery ladder; the top rung (the
    /// squash cascade) costs nothing at commit time but wastes the whole
    /// window.
    pub doom_signal: u64,
    /// Cycles per floor-grain slot flushed by an adaptive-grain
    /// **regrain** (`CommitLog::regrain` stamps every slot of the region
    /// under the shard commit lock); charged to the fiber whose commit
    /// triggered the controller tick, `slots × regrain_per_slot` per
    /// regrained region, plus `doom_signal` per reader the regrain
    /// dooms.  This is what the graincontrol sweep prices against the
    /// stamp traffic a coarser grain saves.
    pub regrain_per_slot: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            work_unit: 1,
            load: 2,
            store: 2,
            buffered_access_overhead: 6,
            find_cpu: 60,
            fork: 400,
            join: 200,
            validate_per_word: 4,
            validate_log_lookup: 2,
            commit_per_word: 4,
            commit_lock: 20,
            cas_retry: 8,
            finalize_per_word: 1,
            spawn_latency: 300,
            retry_per_word: 3,
            ring_probe: 2,
            doom_signal: 30,
            regrain_per_slot: 1,
        }
    }
}

impl CostModel {
    /// Cycles for a segment executed non-speculatively.
    pub fn segment_cycles(&self, work: u64, loads: u64, stores: u64) -> u64 {
        work * self.work_unit + loads * self.load + stores * self.store
    }

    /// Cycles for a segment executed speculatively (buffered accesses).
    pub fn segment_cycles_speculative(&self, work: u64, loads: u64, stores: u64) -> u64 {
        self.segment_cycles(work, loads, stores) + (loads + stores) * self.buffered_access_overhead
    }

    /// Validation cost for a read-set of `words` entries tracked as
    /// `ranges` distinct commit-log ranges: the fixed join half-handshake
    /// plus, per word, the value comparison, plus, per *range*, the
    /// commit-log version probe — coarser grains probe fewer ranges.
    pub fn validation_cycles_grained(&self, words: u64, ranges: u64) -> u64 {
        self.join / 2 + words * self.validate_per_word + ranges * self.validate_log_lookup
    }

    /// Validation cost at word grain (one range per word) — the exact
    /// cost of the original per-word log.
    pub fn validation_cycles(&self, words: u64) -> u64 {
        self.validation_cycles_grained(words, words)
    }

    /// Commit cost for a write-set of `words` entries.
    pub fn commit_cycles(&self, words: u64) -> u64 {
        words * self.commit_per_word
    }

    /// Commit-log locking cost for a batch touching `shards_touched`
    /// shards of the sharded version table (locked mode only).
    pub fn commit_lock_cycles(&self, shards_touched: u64) -> u64 {
        shards_touched * self.commit_lock
    }

    /// Lock-free commit-path contention cost for a batch racing
    /// `retries` same-slot/same-region contenders (lock-free mode only;
    /// 0 retries — the disjoint-range common case — is free).
    pub fn cas_retry_cycles(&self, retries: u64) -> u64 {
        retries * self.cas_retry
    }

    /// Finalization cost for `words` buffered entries.
    pub fn finalize_cycles(&self, words: u64) -> u64 {
        words * self.finalize_per_word
    }

    /// Value-predict retry cost for a read-set of `words` entries (the
    /// second, value-comparing validation pass).
    pub fn retry_cycles(&self, words: u64) -> u64 {
        words * self.retry_per_word
    }

    /// Cost of `probes` version-ring probes (mvcc precise validation).
    pub fn ring_probe_cycles(&self, probes: u64) -> u64 {
        probes * self.ring_probe
    }

    /// Cost of surgically dooming `threads` registered readers at commit
    /// time.
    pub fn doom_cycles(&self, threads: u64) -> u64 {
        threads * self.doom_signal
    }

    /// Cost of regraining one region whose slot block holds `slots`
    /// floor-grain slots (the whole-block conservative flush under the
    /// shard commit lock).
    pub fn regrain_cycles(&self, slots: u64) -> u64 {
        slots * self.regrain_per_slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speculative_segments_cost_more() {
        let c = CostModel::default();
        assert!(c.segment_cycles_speculative(10, 5, 5) > c.segment_cycles(10, 5, 5));
        assert_eq!(c.segment_cycles(10, 0, 0), 10 * c.work_unit);
    }

    #[test]
    fn buffer_costs_scale_with_words() {
        let c = CostModel::default();
        assert!(c.validation_cycles(100) > c.validation_cycles(10));
        assert_eq!(c.commit_cycles(0), 0);
        assert_eq!(c.finalize_cycles(3), 3 * c.finalize_per_word);
    }

    #[test]
    fn validation_charges_the_commit_log_probe() {
        let cheap = CostModel {
            validate_log_lookup: 0,
            ..CostModel::default()
        };
        let mut probed = cheap;
        probed.validate_log_lookup = 3;
        assert_eq!(
            probed.validation_cycles(10) - cheap.validation_cycles(10),
            30
        );
    }

    #[test]
    fn grained_validation_charges_probes_per_range_not_per_word() {
        let c = CostModel::default();
        // 64 words collapsing into 8 ranges probe the log 8 times.
        assert_eq!(
            c.validation_cycles(64) - c.validation_cycles_grained(64, 8),
            (64 - 8) * c.validate_log_lookup
        );
        // Word grain is the degenerate case.
        assert_eq!(c.validation_cycles(64), c.validation_cycles_grained(64, 64));
    }

    #[test]
    fn commit_lock_scales_with_shards_touched() {
        let c = CostModel::default();
        assert_eq!(c.commit_lock_cycles(0), 0);
        assert_eq!(c.commit_lock_cycles(3), 3 * c.commit_lock);
    }

    #[test]
    fn cas_retries_are_cheaper_than_lock_handoffs() {
        let c = CostModel::default();
        assert_eq!(c.cas_retry_cycles(0), 0, "disjoint committers are free");
        assert_eq!(c.cas_retry_cycles(5), 5 * c.cas_retry);
        // The lock-free premise: a CAS bounce costs less than a lock
        // acquire/release, so the fast path wins even under contention.
        assert!(c.cas_retry < c.commit_lock);
    }

    #[test]
    fn recovery_costs_scale_and_stay_below_a_squash() {
        let c = CostModel::default();
        assert_eq!(c.retry_cycles(0), 0);
        assert_eq!(c.retry_cycles(10), 10 * c.retry_per_word);
        assert_eq!(c.doom_cycles(3), 3 * c.doom_signal);
        assert_eq!(c.ring_probe_cycles(4), 4 * c.ring_probe);
        // The mvcc premise: a ring probe (no memory re-read) undercuts
        // even the value-predict retry it replaces.
        assert!(c.ring_probe < c.retry_per_word);
        // The recovery ladder's premise: retrying a 100-word read set is
        // far cheaper than re-executing even a small segment.
        assert!(c.retry_cycles(100) < c.segment_cycles(1000, 100, 100));
    }

    #[test]
    fn regrain_cost_scales_with_the_flushed_block() {
        let c = CostModel::default();
        assert_eq!(c.regrain_cycles(0), 0);
        assert_eq!(c.regrain_cycles(512), 512 * c.regrain_per_slot);
        // A regrain flush (one pass over a region's slots) must stay far
        // below re-executing the region's worth of work — otherwise the
        // controller could never pay for itself.
        assert!(c.regrain_cycles(512) < c.segment_cycles(4096, 512, 512));
    }

    #[test]
    fn default_serializes() {
        let c = CostModel::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: CostModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
