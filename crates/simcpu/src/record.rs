//! Speculation-trace recording.
//!
//! The simulator first executes the workload *once, sequentially*, through
//! a [`RecordContext`] (an implementation of
//! [`TlsContext`]).  The recording captures the
//! task tree the fork/join annotations induce — per task: work segments
//! with their read/write address sets, fork and join events, and whether
//! the task ended at a barrier.  Program results are always computed
//! correctly (the recording *is* a sequential execution); speculation
//! success or failure only affects the simulated timing, which is exactly
//! the property a performance simulator needs.

use std::collections::HashSet;
use std::sync::Arc;

use mutls_membuf::{Addr, GlobalMemory, MainMemory};
use mutls_runtime::{ForkModel, JoinOutcome, Rank, SpecResult, TaskRef, TlsContext};

/// Index of a task node within a [`Recording`].
pub type NodeId = usize;

/// A contiguous stretch of execution between two speculation events.
#[derive(Debug, Default, Clone)]
pub struct Segment {
    /// Abstract work units charged via `work()`.
    pub work: u64,
    /// Number of loads issued in this segment.
    pub loads: u64,
    /// Number of stores issued in this segment.
    pub stores: u64,
    /// Word addresses read (before being written) in this segment.
    pub reads: HashSet<Addr>,
    /// Word addresses written in this segment.
    pub writes: HashSet<Addr>,
}

impl Segment {
    fn is_empty(&self) -> bool {
        self.work == 0 && self.loads == 0 && self.stores == 0
    }
}

/// One element of a task's timeline.
#[derive(Debug, Clone)]
pub enum SimEvent {
    /// Execute a segment of straight-line work.
    Seg(Segment),
    /// A fork point speculating `child` under the given model.
    Fork {
        /// The child task.
        child: NodeId,
        /// Forking model requested at this fork point.
        model: ForkModel,
        /// Fork/join point id (for diagnostics).
        point: u32,
    },
    /// The matching join point for `child`.
    Join {
        /// The child task being joined.
        child: NodeId,
    },
}

/// One task (speculative-thread candidate) of the recording.
#[derive(Debug, Default, Clone)]
pub struct TaskNode {
    /// Timeline of segments and speculation events.
    pub events: Vec<SimEvent>,
    /// Word addresses this task read before writing them (its read
    /// dependences), aggregated over all segments.
    pub read_set: HashSet<Addr>,
    /// Word addresses this task wrote, aggregated over all segments.
    pub write_set: HashSet<Addr>,
    /// True when the task closure ended at a barrier point.
    pub barrier: bool,
    /// Sequential order index (preorder position of the task's region in
    /// the original program order).
    pub seq: usize,
}

impl TaskNode {
    /// Total work units in this task's own segments (excluding children).
    pub fn own_work(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                SimEvent::Seg(s) => s.work,
                _ => 0,
            })
            .sum()
    }

    /// Total loads + stores in this task's own segments.
    pub fn own_memory_ops(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                SimEvent::Seg(s) => s.loads + s.stores,
                _ => 0,
            })
            .sum()
    }
}

/// A recorded speculation trace: the task tree plus the shared memory
/// arena used while recording.
pub struct Recording {
    /// All task nodes; index 0 is the root (non-speculative) task.
    pub nodes: Vec<TaskNode>,
    /// The memory arena the recording executed against.
    pub memory: Arc<GlobalMemory>,
}

impl Recording {
    /// The root task.
    pub fn root(&self) -> &TaskNode {
        &self.nodes[0]
    }

    /// Number of tasks (1 root + one per fork point executed).
    pub fn task_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total work units across every task: the *sequential* execution time
    /// in work units (memory costs are added by the scheduler's cost
    /// model).
    pub fn total_work(&self) -> u64 {
        self.nodes.iter().map(|n| n.own_work()).sum()
    }

    /// Total loads and stores across every task.
    pub fn total_memory_ops(&self) -> u64 {
        self.nodes.iter().map(|n| n.own_memory_ops()).sum()
    }

    /// Memory-access density `ρ = N_rw / work` (the paper's
    /// computation-vs-memory-intensive criterion from Table II).
    pub fn memory_density(&self) -> f64 {
        let work = self.total_work().max(1);
        self.total_memory_ops() as f64 / work as f64
    }
}

/// Handle returned by [`RecordContext::fork`].
pub struct RecordHandle {
    child: NodeId,
    task: TaskRef<RecordContext>,
}

/// Sequential recording context implementing [`TlsContext`].
pub struct RecordContext {
    memory: Arc<GlobalMemory>,
    nodes: Vec<TaskNode>,
    /// Stack of nodes currently being recorded (innermost last); the
    /// current segment under construction sits alongside each.
    stack: Vec<NodeId>,
    current: Segment,
    seq_counter: usize,
}

impl RecordContext {
    /// Start a recording against a fresh arena of `memory_bytes` bytes.
    pub fn new(memory: Arc<GlobalMemory>) -> Self {
        let root = TaskNode {
            seq: 0,
            ..TaskNode::default()
        };
        RecordContext {
            memory,
            nodes: vec![root],
            stack: vec![0],
            current: Segment::default(),
            seq_counter: 1,
        }
    }

    /// The shared memory arena.
    pub fn memory(&self) -> &Arc<GlobalMemory> {
        &self.memory
    }

    fn current_node(&mut self) -> &mut TaskNode {
        let id = *self.stack.last().expect("node stack never empty");
        &mut self.nodes[id]
    }

    fn flush_segment(&mut self) {
        if self.current.is_empty() {
            return;
        }
        let seg = std::mem::take(&mut self.current);
        let node = self.current_node();
        node.read_set.extend(seg.reads.iter().copied());
        node.write_set.extend(seg.writes.iter().copied());
        node.events.push(SimEvent::Seg(seg));
    }

    /// Finish recording and produce the [`Recording`].
    pub fn finish(mut self) -> Recording {
        self.flush_segment();
        assert_eq!(self.stack.len(), 1, "unbalanced fork/join recording");
        Recording {
            nodes: self.nodes,
            memory: self.memory,
        }
    }
}

impl TlsContext for RecordContext {
    type Handle = RecordHandle;

    fn work(&mut self, units: u64) -> SpecResult<()> {
        self.current.work += units;
        Ok(())
    }

    fn load_word(&mut self, addr: Addr) -> SpecResult<u64> {
        self.current.loads += 1;
        if !self.current.writes.contains(&addr) {
            self.current.reads.insert(addr);
        }
        Ok(self.memory.read_word(addr))
    }

    fn store_word(&mut self, addr: Addr, value: u64) -> SpecResult<()> {
        self.current.stores += 1;
        self.current.writes.insert(addr);
        self.memory.write_word(addr, value);
        Ok(())
    }

    fn fork(&mut self, point: u32, task: TaskRef<Self>) -> SpecResult<RecordHandle> {
        self.fork_with_model(point, ForkModel::Mixed, task)
    }

    fn fork_with_model(
        &mut self,
        point: u32,
        model: ForkModel,
        task: TaskRef<Self>,
    ) -> SpecResult<RecordHandle> {
        self.flush_segment();
        let child = self.nodes.len();
        self.nodes.push(TaskNode {
            seq: self.seq_counter,
            ..TaskNode::default()
        });
        self.seq_counter += 1;
        self.current_node().events.push(SimEvent::Fork {
            child,
            model,
            point,
        });
        Ok(RecordHandle { child, task })
    }

    fn join(&mut self, handle: RecordHandle) -> SpecResult<JoinOutcome> {
        // The continuation executes here, at its sequential program
        // position, recording into the child node.
        self.flush_segment();
        self.stack.push(handle.child);
        let result = (handle.task)(self);
        self.flush_segment();
        match result {
            Ok(()) => {}
            Err(mutls_runtime::SpecAbort::BarrierReached) => {
                let id = *self.stack.last().unwrap();
                self.nodes[id].barrier = true;
            }
            Err(other) => {
                self.stack.pop();
                return Err(other);
            }
        }
        self.stack.pop();
        self.current_node().events.push(SimEvent::Join {
            child: handle.child,
        });
        Ok(JoinOutcome::Committed)
    }

    fn barrier(&mut self) -> SpecResult<()> {
        Err(mutls_runtime::SpecAbort::BarrierReached)
    }

    fn check_point(&mut self) -> SpecResult<()> {
        // A check point is where the native runtime polls for aborts and
        // dooms; splitting the segment here gives the scheduler the same
        // opportunity (early synchronization and targeted-doom stops
        // happen at segment boundaries).
        self.flush_segment();
        Ok(())
    }

    fn is_speculative(&self) -> bool {
        // During recording every task runs "as if speculative" except the
        // root region.
        self.stack.len() > 1
    }

    fn rank(&self) -> Rank {
        self.stack.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutls_runtime::task;

    fn arena() -> Arc<GlobalMemory> {
        Arc::new(GlobalMemory::new(1 << 16))
    }

    #[test]
    fn simple_fork_join_builds_two_nodes() {
        let mem = arena();
        let data = mem.alloc::<i64>(8);
        let mut ctx = RecordContext::new(Arc::clone(&mem));
        ctx.work(10).unwrap();
        let child = task(move |ctx: &mut RecordContext| {
            ctx.work(5)?;
            ctx.store(&data, 0, 42)?;
            ctx.barrier()
        });
        let h = ctx.fork(0, child).unwrap();
        ctx.work(20).unwrap();
        ctx.join(h).unwrap();
        let rec = ctx.finish();
        assert_eq!(rec.task_count(), 2);
        assert_eq!(rec.total_work(), 35);
        assert!(rec.nodes[1].barrier);
        assert_eq!(rec.nodes[1].write_set.len(), 1);
        // The store really happened (sequential correctness).
        assert_eq!(mem.get(&data, 0), 42);
    }

    #[test]
    fn read_before_write_is_a_read_dependence_but_not_after() {
        let mem = arena();
        let data = mem.alloc::<i64>(4);
        mem.set(&data, 0, 7);
        let mut ctx = RecordContext::new(Arc::clone(&mem));
        let child = task(move |ctx: &mut RecordContext| {
            let v = ctx.load(&data, 0)?; // read dependence
            ctx.store(&data, 1, v * 2)?;
            let _ = ctx.load(&data, 1)?; // own write: no dependence
            Ok(())
        });
        let h = ctx.fork(0, child).unwrap();
        ctx.join(h).unwrap();
        let rec = ctx.finish();
        assert!(rec.nodes[1].read_set.contains(&data.addr_of(0)));
        assert!(!rec.nodes[1].read_set.contains(&data.addr_of(1)));
        assert_eq!(mem.get(&data, 1), 14);
    }

    #[test]
    fn nested_forks_form_a_tree_in_sequential_order() {
        let mem = arena();
        let mut ctx = RecordContext::new(mem);
        let grandchild = task(|ctx: &mut RecordContext| ctx.work(1));
        let child = task(move |ctx: &mut RecordContext| {
            let h = ctx.fork(1, grandchild.clone())?;
            ctx.work(2)?;
            ctx.join(h)?;
            Ok(())
        });
        let h = ctx.fork(0, child).unwrap();
        ctx.work(4).unwrap();
        ctx.join(h).unwrap();
        let rec = ctx.finish();
        assert_eq!(rec.task_count(), 3);
        // Sequence numbers follow fork order.
        assert_eq!(rec.nodes[1].seq, 1);
        assert_eq!(rec.nodes[2].seq, 2);
        assert_eq!(rec.total_work(), 7);
    }

    #[test]
    fn memory_density_distinguishes_workload_classes() {
        let mem = arena();
        let data = mem.alloc::<i64>(16);
        let mut compute = RecordContext::new(Arc::clone(&mem));
        compute.work(1000).unwrap();
        let compute_rec = compute.finish();

        let mut memy = RecordContext::new(Arc::clone(&mem));
        for i in 0..16 {
            let v = memy.load(&data, i).unwrap();
            memy.store(&data, i, v + 1).unwrap();
        }
        memy.work(16).unwrap();
        let mem_rec = memy.finish();

        assert!(compute_rec.memory_density() < mem_rec.memory_density());
    }

    #[test]
    fn segments_split_at_speculation_events() {
        let mem = arena();
        let mut ctx = RecordContext::new(mem);
        ctx.work(1).unwrap();
        let child = task(|ctx: &mut RecordContext| ctx.work(1));
        let h = ctx.fork(0, child).unwrap();
        ctx.work(2).unwrap();
        ctx.join(h).unwrap();
        ctx.work(3).unwrap();
        let rec = ctx.finish();
        let root = rec.root();
        // Seg(1), Fork, Seg(2), Join, Seg(3)
        assert_eq!(root.events.len(), 5);
        assert!(matches!(root.events[1], SimEvent::Fork { .. }));
        assert!(matches!(root.events[3], SimEvent::Join { .. }));
    }

    #[test]
    fn rank_and_speculative_reflect_nesting() {
        let mem = arena();
        let mut ctx = RecordContext::new(mem);
        assert!(!ctx.is_speculative());
        assert_eq!(ctx.rank(), 0);
        let child = task(|ctx: &mut RecordContext| {
            assert!(ctx.is_speculative());
            assert_eq!(ctx.rank(), 1);
            Ok(())
        });
        let h = ctx.fork(0, child).unwrap();
        ctx.join(h).unwrap();
        let _ = ctx.finish();
    }
}
