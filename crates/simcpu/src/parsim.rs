//! # Time Warp parallel simulation runtime
//!
//! Shards the discrete-event simulator across OS threads **without ever
//! changing its answer**: the driver thread still pops events in exactly
//! the sequential order, but the expensive per-segment effect computation
//! (grain lookups plus the publish-log conflict scans) is precomputed
//! optimistically by shard workers while the segment is "in flight" in
//! virtual time.
//!
//! The protocol is optimistic in the Time Warp sense — a shard speculates
//! past the driver's horizon and is rolled back when reality disagrees:
//!
//! 1. When the driver schedules a segment completion it posts an
//!    `AdvanceRequest` to the fiber's shard worker (chosen by
//!    [`ShardPolicy`]).  The request captures the *absolute* publish-log
//!    length (`scanned_to`) and the grain-table epoch the driver observes
//!    at post time.
//! 2. The worker computes `SegEffects` — a pure function of the shared
//!    recording, the publish-log **prefix** below `scanned_to`, and the
//!    grain table — and parks it in the request's slot.
//! 3. At the completion pop the driver *validates*: if the grain epoch
//!    moved (a regrain re-indexed every range id) or any publish-log
//!    **suffix** entry intersects the segment's reads, the precomputed
//!    answer is discarded — a **shard rollback** — and the effects are
//!    recomputed inline over the full log.  Both predicates are pure
//!    functions of the deterministic event schedule, so the rollback
//!    count itself replays identically at any thread count.
//! 4. A valid-but-late worker (slot still empty) is merely *overtaken*:
//!    the driver recomputes inline and moves on.
//!
//! Because a clean suffix plus an unchanged grain epoch make the prefix
//! scan provably equal to a full-log scan (every conflict predicate
//! filters on a strict `time > threshold`), the applied effects are
//! byte-identical to the sequential simulator's — the acceptance gate of
//! the parallel simulator.
//!
//! **GVT / fossil collection.**  The scheduler's pop clock is the global
//! virtual time.  Every conflict scan filters entries on a strict
//! `time > threshold` where the threshold is at least the reading fiber's
//! `start_time`, and fibers only ever fork with `start_time >=` the
//! current pop time; so entries at or below the *horizon* — the minimum
//! `start_time` over live speculative fibers, capped by the pop clock —
//! can never match again and are truncated (`PublishLog::truncate_through`).
//! Fossil collection runs identically (and is equally safe) in sequential
//! mode, so it cannot perturb replay.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use mutls_membuf::Addr;
pub use mutls_runtime::ShardPolicy;

use crate::cost::CostModel;
use crate::record::{NodeId, Recording, Segment, SimEvent};

/// One published write batch: the commit time, the written word
/// addresses, and the range ids stamped at the publisher's live grains.
#[derive(Debug, Clone)]
pub(crate) struct PubEntry {
    /// Virtual time of the publish.
    pub time: u64,
    /// Word addresses written by the batch.
    pub words: HashSet<Addr>,
    /// Region-prefixed range ids the batch stamped.
    pub ranges: HashSet<u64>,
}

#[derive(Debug, Default)]
struct PubLogInner {
    /// Absolute index of `entries[0]` — entries below it were fossils.
    base: u64,
    entries: Vec<PubEntry>,
}

/// The shared publish log: an append-only sequence of [`PubEntry`]
/// addressed by *absolute* index, so fossil collection can drop dead
/// prefixes without invalidating the indices captured by in-flight
/// [`AdvanceRequest`]s.
#[derive(Debug, Default)]
pub(crate) struct PublishLog {
    inner: RwLock<PubLogInner>,
}

/// A read view of the log; `prefix`/`suffix` slice by absolute index.
pub(crate) struct LogView<'a> {
    base: u64,
    entries: &'a [PubEntry],
}

impl<'a> LogView<'a> {
    /// Entries with absolute index `< upto` (already-fossilized entries
    /// are simply absent — they can no longer match any live scan).
    pub fn prefix(&self, upto: u64) -> &'a [PubEntry] {
        let n = (upto.saturating_sub(self.base) as usize).min(self.entries.len());
        &self.entries[..n]
    }

    /// Entries with absolute index `>= from`.
    pub fn suffix(&self, from: u64) -> &'a [PubEntry] {
        let s = (from.saturating_sub(self.base) as usize).min(self.entries.len());
        &self.entries[s..]
    }

    /// All live entries.
    pub fn all(&self) -> &'a [PubEntry] {
        self.entries
    }
}

impl PublishLog {
    /// Absolute length of the log (fossilized entries included).
    pub fn len_abs(&self) -> u64 {
        let inner = self.inner.read();
        inner.base + inner.entries.len() as u64
    }

    /// Append one published batch.
    pub fn push(&self, entry: PubEntry) {
        self.inner.write().entries.push(entry);
    }

    /// Fossil collection: drop the leading run of entries with
    /// `time <= horizon` (the log is scanned order-insensitively, but
    /// only a *prefix* can be dropped without renumbering).  Returns the
    /// number of entries collected.
    pub fn truncate_through(&self, horizon: u64) -> u64 {
        let mut inner = self.inner.write();
        let dead = inner
            .entries
            .iter()
            .take_while(|e| e.time <= horizon)
            .count();
        if dead > 0 {
            inner.entries.drain(..dead);
            inner.base += dead as u64;
        }
        dead as u64
    }

    /// Run `f` under the read lock with a [`LogView`].
    pub fn with<R>(&self, f: impl FnOnce(LogView<'_>) -> R) -> R {
        let inner = self.inner.read();
        f(LogView {
            base: inner.base,
            entries: &inner.entries,
        })
    }
}

/// The live per-region grain map, shared between the driver and the
/// shard workers.  Only the driver writes (the grain controller runs on
/// the driver thread); every write bumps a monotonic epoch, and a worker
/// answer computed under a stale epoch is discarded at validation — so a
/// torn read during a regrain can never corrupt the replay.
#[derive(Debug)]
pub(crate) struct GrainTable {
    floor_log2: u32,
    region_log2: u32,
    default_grain: u32,
    /// True when grain control is enabled (the map can be written).
    dynamic: bool,
    epoch: AtomicU64,
    map: RwLock<HashMap<u64, u32>>,
}

impl GrainTable {
    /// Build a table with `default_grain` for unmapped regions.
    pub fn new(floor_log2: u32, region_log2: u32, default_grain: u32, dynamic: bool) -> Self {
        GrainTable {
            floor_log2,
            region_log2,
            default_grain,
            dynamic,
            epoch: AtomicU64::new(0),
            map: RwLock::new(HashMap::new()),
        }
    }

    /// Log2 of the region size the table is keyed by.
    pub fn region_log2(&self) -> u32 {
        self.region_log2
    }

    /// The current regrain epoch (bumped on every [`GrainTable::set`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Driver-only: regrain `region` and bump the epoch.
    pub fn set(&self, region: u64, grain_log2: u32) {
        self.map.write().insert(region, grain_log2);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The live grain of `region`.
    pub fn grain_of_region(&self, region: u64) -> u32 {
        if !self.dynamic {
            return self.default_grain;
        }
        *self.map.read().get(&region).unwrap_or(&self.default_grain)
    }

    /// The live grain tracking `addr` right now.
    pub fn grain_at(&self, addr: Addr) -> u32 {
        self.grain_of_region(addr >> self.region_log2)
    }

    /// `addr`'s conflict-detection range id at its region's current
    /// grain, prefixed with the region id (see `Scheduler::range_at` for
    /// why the prefix is load-bearing).
    pub fn range_at(&self, addr: Addr) -> u64 {
        let region = addr >> self.region_log2;
        let offset = addr & ((1u64 << self.region_log2) - 1);
        (region << (self.region_log2 - self.floor_log2)) | (offset >> self.grain_of_region(region))
    }
}

/// The precomputed effects of one completed work segment — everything
/// `apply_segment_effects` needs that is expensive to derive: the priced
/// cycles, the reads coarsened at the live grains, and the publish-log
/// conflict verdicts over the scanned prefix.
#[derive(Debug, Clone)]
pub(crate) struct SegEffects {
    /// Virtual cycles the segment costs (speculative or critical pricing).
    pub cycles: u64,
    /// `(addr, range_at(addr))` for every read of the segment, at the
    /// grain epoch the computation ran under.
    pub seg_read_ranges: Vec<(Addr, u64)>,
    /// Any scanned publish intersects the segment's reads (word or range).
    pub hit: bool,
    /// Some scanned publish wrote a word the segment actually read.
    pub word_hit: bool,
    /// mvcc only: a range-only hit whose range overflowed the version
    /// ring (forces the conservative doom instead of a precise pass).
    pub overflow: bool,
    /// Lowest region id among the conflicting reads (telemetry target).
    pub region: Option<u64>,
}

/// A one-shot mailbox the worker parks its answer in.  The driver takes
/// the answer at the completion pop; a late write into an abandoned slot
/// is harmless (the `Arc` just drops).
pub(crate) type AdvanceSlot = Mutex<Option<SegEffects>>;

/// What a fiber remembers about its posted advance request until the
/// segment-completion pop consumes (or invalidates) it.
#[derive(Debug)]
pub(crate) struct PendingAdvance {
    /// Where the worker will park the [`SegEffects`].
    pub slot: Arc<AdvanceSlot>,
    /// Absolute publish-log length captured at post time — the boundary
    /// between the worker's prefix scan and the driver's suffix check.
    pub scanned_to: u64,
    /// Grain epoch captured at post time.
    pub epoch: u64,
}

/// One unit of shard work: compute the effects of the segment at
/// `(node, ip)` against the publish-log prefix below `scanned_to`.
pub(crate) struct AdvanceRequest {
    /// Task node holding the segment.
    pub node: NodeId,
    /// Event index of the segment within the node.
    pub ip: usize,
    /// Whether the executing fiber is speculative (selects the pricing
    /// and enables the conflict scan).
    pub speculative: bool,
    /// Virtual time the segment started (the scan threshold).
    pub seg_start: u64,
    /// Absolute publish-log prefix bound for the conflict scan.
    pub scanned_to: u64,
    /// The mailbox shared with the driver.
    pub slot: Arc<AdvanceSlot>,
}

/// State shared between the driver and all shard workers.
pub(crate) struct WarpShared {
    /// The publish log (conflict-scan input).
    pub log: Arc<PublishLog>,
    /// The live grain table (range-id input).
    pub grains: Arc<GrainTable>,
    /// The cost model (segment pricing).
    pub cost: CostModel,
    /// Whether the recovery engine is mvcc (enables overflow probing).
    pub mvcc: bool,
    /// Version-ring depth for the overflow predicate.
    pub ring_depth: usize,
    /// Total effect computations completed by workers (racy telemetry).
    pub computed: AtomicU64,
}

/// Driver-side handle to the shard workers for one parallel run.
pub(crate) struct WarpState {
    /// One channel per shard worker; dropping them all stops the shards.
    pub senders: Vec<Sender<AdvanceRequest>>,
    /// How fibers map onto shards.
    pub policy: ShardPolicy,
    /// The shared state the workers compute against.
    pub shared: Arc<WarpShared>,
}

/// Telemetry of one parallel (or sequential — all zeros) simulation.
/// Deliberately *not* part of `RunReport`: the report must serialize
/// byte-identically at every thread count, while these counters describe
/// the Time Warp machinery itself.  `shard_rollbacks`, `requests` and
/// `fossil_collected` are deterministic (pure functions of the event
/// schedule); the applied/overtaken/computed split depends on worker
/// timing and is reported for observability only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarpStats {
    /// Effective `SimConfig::sim_threads` (1 = sequential).
    pub sim_threads: usize,
    /// Advance requests posted to shard workers.
    pub requests: u64,
    /// Precomputed effects that validated and were applied as-is.
    pub advances_applied: u64,
    /// Valid requests whose worker had not answered by the pop (the
    /// driver overtook its own precompute and recomputed inline).
    pub advances_overtaken: u64,
    /// Effect computations completed worker-side (including ones that
    /// were later invalidated or overtaken).
    pub advances_computed: u64,
    /// Precomputed effects discarded because a cross-shard interaction
    /// (publish or regrain) landed in the segment's virtual past —
    /// the Time Warp rollback count.  Deterministic at any thread count.
    pub shard_rollbacks: u64,
    /// Publish-log entries reclaimed by GVT fossil collection.
    pub fossil_collected: u64,
}

impl WarpStats {
    /// The stats as labeled metric gauges, for appending to a *final*
    /// exported metrics snapshot.  They must never enter the sampled
    /// series: the applied/overtaken/computed split is wall-clock racy,
    /// and even the deterministic counters vary with `sim_threads`,
    /// which would break the series' byte-identity guarantee.
    pub fn metric_gauges(&self) -> Vec<mutls_metrics::LabeledGauge> {
        let gauge = |counter: &str, value: u64| {
            mutls_metrics::LabeledGauge::new("warp", "counter", counter, value as f64)
        };
        vec![
            gauge("sim_threads", self.sim_threads as u64),
            gauge("requests", self.requests),
            gauge("advances_applied", self.advances_applied),
            gauge("advances_overtaken", self.advances_overtaken),
            gauge("advances_computed", self.advances_computed),
            gauge("shard_rollbacks", self.shard_rollbacks),
            gauge("fossil_collected", self.fossil_collected),
        ]
    }
}

/// Effects of the segment at `(seg, seg_start)` against the publish-log
/// prefix below `scanned_to` — the pure function both the shard workers
/// and the driver's inline fallback evaluate.  With `scanned_to` at the
/// full log length this is exactly the sequential simulator's
/// `apply_segment_effects` scan.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compute_segment_effects(
    seg: &Segment,
    speculative: bool,
    seg_start: u64,
    cost: &CostModel,
    grains: &GrainTable,
    log: &PublishLog,
    scanned_to: u64,
    mvcc: bool,
    ring_depth: usize,
) -> SegEffects {
    let cycles = if speculative {
        cost.segment_cycles_speculative(seg.work, seg.loads, seg.stores)
    } else {
        cost.segment_cycles(seg.work, seg.loads, seg.stores)
    };
    let seg_read_ranges: Vec<(Addr, u64)> =
        seg.reads.iter().map(|&a| (a, grains.range_at(a))).collect();
    let mut hit = false;
    let mut word_hit = false;
    let mut overflow = false;
    let mut region = None;
    if speculative {
        log.with(|view| {
            let entries = view.prefix(scanned_to);
            hit = entries.iter().any(|e| {
                e.time > seg_start
                    && seg_read_ranges
                        .iter()
                        .any(|(a, r)| e.words.contains(a) || e.ranges.contains(r))
            });
            if hit {
                word_hit = entries
                    .iter()
                    .any(|e| e.time > seg_start && seg.reads.iter().any(|a| e.words.contains(a)));
                if mvcc && !word_hit {
                    // Conservative ring-overflow probe (the driver only
                    // consults it on the range-only path).
                    overflow = seg_read_ranges.iter().any(|(_, r)| {
                        entries
                            .iter()
                            .filter(|e| e.time > seg_start && e.ranges.contains(r))
                            .count()
                            >= ring_depth
                    });
                }
                // Lowest qualifying region, not "first": seg.reads is a
                // HashSet, whose order must never leak into the replay.
                region = seg_read_ranges
                    .iter()
                    .filter(|(a, r)| {
                        entries.iter().any(|e| {
                            e.time > seg_start && (e.words.contains(a) || e.ranges.contains(r))
                        })
                    })
                    .map(|(a, _)| a >> grains.region_log2())
                    .min();
            }
        });
    }
    SegEffects {
        cycles,
        seg_read_ranges,
        hit,
        word_hit,
        overflow,
        region,
    }
}

/// Body of one shard worker: drain advance requests until every sender
/// is dropped, parking each answer in its request's slot.
pub(crate) fn worker_loop(
    recording: &Recording,
    rx: Receiver<AdvanceRequest>,
    shared: Arc<WarpShared>,
) {
    while let Ok(req) = rx.recv() {
        let node = &recording.nodes[req.node];
        if let SimEvent::Seg(seg) = &node.events[req.ip] {
            let fx = compute_segment_effects(
                seg,
                req.speculative,
                req.seg_start,
                &shared.cost,
                &shared.grains,
                &shared.log,
                req.scanned_to,
                shared.mvcc,
                shared.ring_depth,
            );
            *req.slot.lock() = Some(fx);
            shared.computed.fetch_add(1, Ordering::Relaxed);
        }
    }
}
