//! Discrete-event scheduling of a recorded speculation trace on N virtual
//! CPUs.
//!
//! The scheduler replays a [`Recording`] under a forking model and a
//! [`CostModel`], producing the same metrics the paper reports: virtual
//! runtime (hence speedup vs. the sequential cost of the trace), critical-
//! and speculative-path phase breakdowns, commit/rollback counts, coverage
//! and power efficiency.
//!
//! Two aspects of the MUTLS runtime are modelled faithfully because the
//! evaluation depends on them:
//!
//! * **Early synchronization (check points).**  When a joining thread
//!   reaches its join point before the speculative child has finished, the
//!   child is stopped at its next check point (here: the end of its
//!   in-flight segment), its partial work is validated and committed, and
//!   the joiner *continues the child's remaining execution itself* — the
//!   synchronization-table / stack-frame-reconstruction mechanism of paper
//!   §IV-E/H.  This is what lets loop speculation recycle CPUs and scale
//!   past `#chunks ≈ #CPUs`.
//! * **Conflict detection.**  A speculative task is doomed when an address
//!   it read is published (committed to main memory) by logically earlier
//!   work while the task is in flight — the condition MUTLS read-set
//!   validation detects.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mutls_adaptive::{
    ForkDecision, Governor, GovernorConfig, GrainControlConfig, GrainController, SiteOutcome,
};
use mutls_membuf::{
    region_log2_for_grain, Addr, CommitLogConfig, CommitLogStats, RegionProfile, RollbackReason,
    SpecFailure, WORD_GRAIN_LOG2,
};
use mutls_metrics::{
    phase_share_gauges, CounterId, GaugeId, HistId, LabeledGauge, MetricsConfig, MetricsSeries,
    MetricsSnapshot, Registry, ScrapeExtras,
};
use mutls_runtime::{
    ForkModel, Phase, RecoveryConfig, RecoveryMode, RunReport, ShardPolicy, ThreadStats,
};
use mutls_trace::{
    DenyPolicy, DoomSource, EventKind, LatencyPhase, LatencyRecorder, PlanArm, RollbackCause,
    TraceEvent, ValidateOutcome,
};

use crate::cost::CostModel;
use crate::parsim::{
    self, AdvanceRequest, GrainTable, PendingAdvance, PubEntry, PublishLog, SegEffects, WarpShared,
    WarpState, WarpStats,
};
use crate::record::{NodeId, Recording, Segment, SimEvent};

/// Pops between GVT sweeps of the publish log (fossil collection).  Runs
/// in sequential mode too — truncation is provably invisible to every
/// conflict scan, and keeping both modes on one code path is itself part
/// of the byte-identity argument.
const FOSSIL_SWEEP_POPS: u64 = 64;

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of speculative virtual CPUs.
    pub num_cpus: usize,
    /// When set, every fork point uses this model instead of the one the
    /// workload requested (used by the forking-model comparison).
    pub fork_model: Option<ForkModel>,
    /// Probability of forcing a rollback at an otherwise valid join.
    pub rollback_probability: f64,
    /// RNG seed for rollback injection.
    pub seed: u64,
    /// Virtual-cycle cost model.
    pub cost: CostModel,
    /// Adaptive speculation governor consulted at every simulated fork
    /// point (default: `Static`, i.e. the unconditional seed behaviour).
    pub governor: GovernorConfig,
    /// Grain/shard configuration of the simulated commit log — the same
    /// type the native runtime uses, so one normalization rule governs
    /// both layers.  The simulator defaults to *word* grain and a
    /// *single* shard: exact conflicts, and every publishing commit pays
    /// exactly one `CostModel::commit_lock` — the old global-commit-lock
    /// behaviour with its serialization now priced, keeping the figure
    /// experiments within noise of their pre-sharding baselines.
    /// Coarser grains model the range-granular log — fewer validation
    /// probes and commit stamps, but conflicts coarsen to ranges, so
    /// false sharing appears (conservative, never missed); more shards
    /// spread a batch across up to `shards` lock acquisitions.
    pub commit_log: CommitLogConfig,
    /// The recovery engine mirrored from the native runtime (same type,
    /// same default: targeted dooming + value-predict-and-retry).  Under
    /// `Targeted`, a publish stops its doomed readers at their next check
    /// point (charging `CostModel::doom_signal` per victim) instead of
    /// letting them run to their join; with `value_predict`, a doomed
    /// fiber whose conflict was range-only false sharing re-validates by
    /// value at its join (`CostModel::retry_per_word`) and commits
    /// without re-execution.
    pub recovery: RecoveryConfig,
    /// Adaptive-grain control mirrored from the native runtime (same
    /// policy type, same defaults: disabled).  When enabled,
    /// `commit_log.grain_log2` is the floor grain, regions (of
    /// `region_log2_for_grain(floor)` bytes) start at the controller's
    /// initial grain, and a deterministic controller tick every
    /// `tick_commits` publishes regrains regions — charging
    /// `CostModel::regrain_per_slot` per flushed slot and
    /// `CostModel::doom_signal` per conservatively doomed reader, so the
    /// replay prices regrains exactly and reproducibly.
    pub grain_control: GrainControlConfig,
    /// Record lifecycle [`TraceEvent`]s in **virtual time** into
    /// [`SimResult::events`].  Deterministic: two runs with the same
    /// recording and config produce byte-identical event streams.  The
    /// phase-latency histograms behind `RunReport.latency` are always on.
    pub trace: bool,
    /// OS threads driving the simulation: `1` (the default) is the
    /// sequential event loop, `n > 1` is the Time Warp split — the
    /// driver plus `n - 1` shard workers that precompute segment
    /// effects optimistically (see the `parsim` module).  The
    /// serialized [`RunReport`] is byte-identical at every value; only
    /// wall-clock time changes.
    pub sim_threads: usize,
    /// How fibers map onto the Time Warp shard workers (ignored when
    /// `sim_threads <= 1`).
    pub shard_policy: ShardPolicy,
    /// The live telemetry plane, mirrored deterministically: samples are
    /// taken off the **virtual clock** every
    /// [`MetricsConfig::sim_cadence_cycles`] cycles (the wall-clock
    /// interval is ignored), so the series in [`SimResult::metrics`] is
    /// byte-identical at every `sim_threads` and shard policy.
    pub metrics: MetricsConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_cpus: 4,
            fork_model: None,
            rollback_probability: 0.0,
            seed: 0xC0FFEE,
            cost: CostModel::default(),
            governor: GovernorConfig::default(),
            commit_log: CommitLogConfig::default()
                .grain_log2(WORD_GRAIN_LOG2)
                .shards(1)
                // The sim defaults to the *locked* cost model even though
                // the native runtime now defaults lock-free: the committed
                // replay baselines (BENCH_PR4/PR5.json) and the figure
                // experiments' cycle counts were priced on commit_lock,
                // and a single simulated shard has no CAS contention to
                // model anyway.  Opt into the lock-free pricing with
                // `commit_lock_free(true)`.
                .locked(),
            // The sim defaults to the *legacy* single-version recovery
            // engine (targeted dooming + value predict, ring depth 1)
            // even though the native runtime now defaults to mvcc: the
            // committed replay baselines (BENCH_PR4/PR5/PR7.json) were
            // produced before version rings existed, and the figure
            // experiments' cycle counts must stay byte-identical.  Opt
            // into the mvcc pricing with `.recovery(RecoveryConfig::mvcc())`.
            recovery: RecoveryConfig::targeted_with_retry(),
            grain_control: GrainControlConfig::default(),
            trace: false,
            sim_threads: 1,
            shard_policy: ShardPolicy::default(),
            metrics: MetricsConfig::default(),
        }
    }
}

impl SimConfig {
    /// Convenience constructor for a CPU sweep point.
    pub fn with_cpus(n: usize) -> Self {
        SimConfig {
            num_cpus: n,
            ..Default::default()
        }
    }

    /// Override the forking model (builder style).
    pub fn fork_model(mut self, model: ForkModel) -> Self {
        self.fork_model = Some(model);
        self
    }

    /// Set the injected rollback probability (builder style).
    pub fn rollback_probability(mut self, p: f64) -> Self {
        self.rollback_probability = p;
        self
    }

    /// Set the governor configuration (builder style).
    pub fn governor(mut self, governor: GovernorConfig) -> Self {
        self.governor = governor;
        self
    }

    /// Set the simulated commit-log grain (builder style).
    pub fn grain_log2(mut self, grain_log2: u32) -> Self {
        self.commit_log.grain_log2 = grain_log2;
        self
    }

    /// Set the simulated commit-log shard count (builder style).
    pub fn commit_shards(mut self, shards: usize) -> Self {
        self.commit_log.shards = shards;
        self
    }

    /// Price commits on the lock-free CAS path instead of the default
    /// locked model (builder style): contended batches pay
    /// `CostModel::cas_retry` per same-shard contender instead of
    /// `commit_lock` per shard touched.
    pub fn commit_lock_free(mut self, lock_free: bool) -> Self {
        self.commit_log.lock_free = lock_free;
        self
    }

    /// Set the recovery-engine configuration (builder style).
    pub fn recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Set the adaptive-grain control configuration (builder style).
    pub fn grain_control(mut self, grain_control: GrainControlConfig) -> Self {
        self.grain_control = grain_control;
        self
    }

    /// Enable virtual-time lifecycle event tracing (builder style).
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Set the simulation thread count (builder style): `1` is the
    /// sequential simulator, larger values enable the Time Warp shard
    /// workers.  Zero is normalized to 1.
    pub fn sim_threads(mut self, n: usize) -> Self {
        self.sim_threads = n.max(1);
        self
    }

    /// Set the Time Warp shard policy (builder style).
    pub fn shard_policy(mut self, policy: ShardPolicy) -> Self {
        self.shard_policy = policy;
        self
    }

    /// Set the metrics-plane configuration (builder style).  The
    /// simulator samples off the virtual clock
    /// ([`MetricsConfig::sim_cadence_cycles`]); the wall-clock interval
    /// is ignored.
    pub fn metrics(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = metrics;
        self
    }
}

/// Result of one simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Phase breakdowns and thread counts (times in virtual cycles).
    pub report: RunReport,
    /// Cost of executing the trace sequentially (no speculation, no
    /// buffering overhead), in virtual cycles.
    pub sequential_cycles: u64,
    /// Virtual runtime of the speculative execution.
    pub parallel_cycles: u64,
    /// Number of tasks in the trace.
    pub tasks: usize,
    /// Lifecycle events in virtual time, in emission order (empty unless
    /// [`SimConfig::trace`] is on).  Deterministic across identical runs.
    pub events: Vec<TraceEvent>,
    /// Time Warp telemetry (all zeros except `sim_threads` in sequential
    /// mode).  Deliberately outside [`SimResult::report`] so the report
    /// serializes byte-identically at every thread count.
    pub warp: WarpStats,
    /// The deterministic metrics time series (empty unless
    /// [`SimConfig::metrics`] is enabled): one snapshot per virtual-cycle
    /// cadence boundary crossed, plus a final snapshot at `ts = runtime`.
    /// Warp telemetry is deliberately excluded, so the series — like the
    /// report — is byte-identical at every `sim_threads`.
    pub metrics: MetricsSeries,
}

impl SimResult {
    /// Absolute speedup `T_s / T_N`.
    pub fn speedup(&self) -> f64 {
        self.sequential_cycles as f64 / self.parallel_cycles.max(1) as f64
    }

    /// Power efficiency `η_power` (paper §V-B).
    pub fn power_efficiency(&self) -> f64 {
        self.report.power_efficiency(self.sequential_cycles)
    }

    /// Rolled-back threads split by cause (conflict / overflow / injected
    /// / other) — prefer this over the single
    /// [`RunReport::rolled_back_threads`] count when reporting.
    pub fn rollback_reasons(&self) -> [u64; mutls_membuf::RollbackReason::COUNT] {
        self.report.rollback_reasons
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frame {
    node: NodeId,
    ip: usize,
    /// True when this frame is a rollback-triggered inline re-execution:
    /// a *speculative* fiber may not fork out of such frames (mirroring
    /// the native runtime, whose overlay-poisoned re-forks are pinned
    /// inline).
    reexec: bool,
}

struct Fiber {
    cpu: usize,
    speculative: bool,
    /// Fork-site ID this fiber was speculated from (0 for the root).
    site: u32,
    /// Forking model the fiber was launched under.
    model: ForkModel,
    frames: Vec<Frame>,
    time: u64,
    start_time: u64,
    segment_started: u64,
    stats: ThreadStats,
    reads: HashSet<Addr>,
    writes: HashSet<Addr>,
    /// Region-prefixed commit-log range ids covering `reads` (see
    /// `Scheduler::range_at`) — the grain conflicts are detected at.
    read_ranges: HashSet<u64>,
    doomed: Option<SpecFailure>,
    /// True when the dooming conflict was range-only (no word of the
    /// published batch was actually read) — suspected false sharing.
    doomed_false_sharing: bool,
    /// Region of the first conflicting read (grain-control telemetry:
    /// conflicts and retries are attributed here at the join).
    conflict_region: Option<u64>,
    /// True when the fiber's conflict was repaired by value-predict-and-
    /// retry at its join (it committed without re-execution).
    retried: bool,
    /// Fiber waiting at a join for this fiber to stop.
    waiter: Option<usize>,
    blocked_since: u64,
    finished: Option<u64>,
    /// Set while a work segment is in flight (effects applied at its
    /// completion time).
    seg_in_flight: bool,
    /// The joiner has requested this fiber to stop at its next check point.
    stop_requested: bool,
    /// Speculative fibers created (and not yet joined) by this fiber.
    child_fibers: HashMap<NodeId, usize>,
    /// Child fiber whose join this fiber is ready to process on resume.
    pending_join: Option<usize>,
    /// True once the fiber's outcome has been consumed by its joiner or it
    /// was cancelled by a cascading rollback.
    retired: bool,
    /// Outstanding Time Warp advance request for the in-flight segment
    /// (always `None` in sequential mode).
    advance: Option<PendingAdvance>,
}

impl Fiber {
    fn new(
        cpu: usize,
        speculative: bool,
        node: NodeId,
        start_time: u64,
        site: u32,
        model: ForkModel,
    ) -> Self {
        Fiber {
            cpu,
            speculative,
            site,
            model,
            frames: vec![Frame {
                node,
                ip: 0,
                reexec: false,
            }],
            time: start_time,
            start_time,
            segment_started: start_time,
            stats: ThreadStats::new(),
            reads: HashSet::new(),
            writes: HashSet::new(),
            read_ranges: HashSet::new(),
            doomed: None,
            doomed_false_sharing: false,
            conflict_region: None,
            retried: false,
            waiter: None,
            blocked_since: 0,
            finished: None,
            seg_in_flight: false,
            stop_requested: false,
            child_fibers: HashMap::new(),
            pending_join: None,
            retired: false,
            advance: None,
        }
    }
}

/// Discrete-event scheduler.
pub struct Scheduler<'a> {
    recording: &'a Recording,
    config: SimConfig,
    fibers: Vec<Fiber>,
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    queue_seq: u64,
    cpu_free: Vec<bool>,
    most_speculative: Option<usize>,
    active_speculative: usize,
    rng: SmallRng,
    spec_stats: ThreadStats,
    committed: u64,
    rolled_back: u64,
    retried: u64,
    rolled_back_by_reason: [u64; RollbackReason::COUNT],
    /// Log of (time, published words, published ranges) used for
    /// conflict detection.  Ranges are computed at the publisher's
    /// current per-region grain; word-level overlap is always checked in
    /// addition, so a true conflict is never missed even when a regrain
    /// lands between the publish and the reader's check.  Shared with
    /// the Time Warp shard workers (read-only on their side) and pruned
    /// by GVT fossil collection.
    publishes: Arc<PublishLog>,
    /// Adaptive speculation governor (per-site profiling + fork policy).
    governor: Governor,
    /// Log2 of the grain-control region size (mirrors the native log).
    region_log2: u32,
    /// Live grain per region (regions absent from the map run at the
    /// controller's initial grain, or the floor grain when control is
    /// disabled), shared with the shard workers.  Driver-only writes;
    /// every regrain bumps its epoch, invalidating in-flight advances.
    grains: Arc<GrainTable>,
    /// Per-region telemetry: (stamps, conflicts, false sharing, retries),
    /// cumulative — the controller differences ticks itself.
    region_telemetry: HashMap<u64, [u64; 4]>,
    /// The deterministic grain controller (None when disabled).
    grain_controller: Option<GrainController>,
    /// Publishes since the run started (the controller's tick clock).
    publish_count: u64,
    /// Simulated commit-log traffic for the report: batches and range
    /// stamps (the grain sweep's headline columns), plus regrains.
    sim_commits: u64,
    sim_stamps: u64,
    sim_regrains: u64,
    /// Modeled CAS retries paid by lock-free commits (zero in the
    /// default locked pricing).
    sim_cas_retries: u64,
    /// Modeled version-ring overflows: range conflicts mvcc had to
    /// classify conservatively because more publishes hit the range than
    /// the ring holds (always zero under the legacy depth-1 engine —
    /// depth 1 never even probes).
    sim_ring_overflows: u64,
    /// Lifecycle events in virtual time (only filled when tracing is on).
    events: Vec<TraceEvent>,
    /// Always-on phase-latency histograms (virtual cycles as "ns").
    latency: LatencyRecorder,
    /// Shard workers of a parallel run (None in sequential mode).
    warp: Option<WarpState>,
    /// Events popped so far (the GVT fossil-collection clock).
    pop_count: u64,
    /// Advance requests posted to shard workers.
    warp_requests: u64,
    /// Precomputed effects that validated and were applied.
    warp_advances_applied: u64,
    /// Valid requests the driver overtook (worker had not answered).
    warp_advances_overtaken: u64,
    /// Precomputed effects invalidated by a publish or regrain landing
    /// in the segment's virtual past (deterministic at any thread count).
    warp_shard_rollbacks: u64,
    /// Publish-log entries reclaimed by fossil collection.
    fossil_collected: u64,
    /// Speculative fibers spawned (the replay's fork counter).
    sim_forks: u64,
    /// Metrics-plane histogram bank: observed only from the driver
    /// thread (retire sites), so its contents are deterministic at any
    /// `sim_threads`.  Disabled (the default) every observe is one
    /// always-false branch.
    metrics_registry: Registry,
    /// The deterministic snapshot series (virtual-clock cadence).
    metrics_series: MetricsSeries,
    /// Next virtual-cycle boundary a sample is due at.
    next_metrics_tick: u64,
}

impl<'a> Scheduler<'a> {
    /// Create a scheduler for `recording` under `config`.
    pub fn new(recording: &'a Recording, mut config: SimConfig) -> Self {
        // SimConfig's fields are pub and call sites use struct literals,
        // so apply the commit log's own normalization rules here: the
        // shard count is used as a bit mask and the grain as a shift.
        // The recovery engine's ring depth is folded into the log config
        // exactly as the native ThreadManager does, so the reported
        // `CommitLogStats::ring_depth` matches across layers.
        config.commit_log = config
            .commit_log
            .ring_depth(config.recovery.ring_depth)
            .normalized();
        let rng = SmallRng::seed_from_u64(config.seed);
        let num_cpus = config.num_cpus;
        let governor = Governor::new(config.governor);
        let region_log2 = region_log2_for_grain(config.commit_log.grain_log2);
        let grain_controller = config
            .grain_control
            .enabled
            .then(|| GrainController::new(config.grain_control, config.commit_log.grain_log2));
        let floor = config.commit_log.grain_log2;
        let default_grain = if config.grain_control.enabled {
            config
                .grain_control
                .initial_grain_log2
                .clamp(floor, region_log2)
        } else {
            floor
        };
        let grains = Arc::new(GrainTable::new(
            floor,
            region_log2,
            default_grain,
            config.grain_control.enabled,
        ));
        Scheduler {
            recording,
            fibers: Vec::new(),
            queue: BinaryHeap::new(),
            queue_seq: 0,
            cpu_free: vec![true; num_cpus],
            most_speculative: None,
            active_speculative: 0,
            rng,
            spec_stats: ThreadStats::new(),
            committed: 0,
            rolled_back: 0,
            retried: 0,
            rolled_back_by_reason: [0; RollbackReason::COUNT],
            publishes: Arc::new(PublishLog::default()),
            governor,
            region_log2,
            grains,
            region_telemetry: HashMap::new(),
            grain_controller,
            publish_count: 0,
            sim_commits: 0,
            sim_stamps: 0,
            sim_regrains: 0,
            sim_cas_retries: 0,
            sim_ring_overflows: 0,
            events: Vec::new(),
            latency: LatencyRecorder::new(),
            warp: None,
            pop_count: 0,
            warp_requests: 0,
            warp_advances_applied: 0,
            warp_advances_overtaken: 0,
            warp_shard_rollbacks: 0,
            fossil_collected: 0,
            sim_forks: 0,
            metrics_registry: Registry::new(config.metrics, 1),
            metrics_series: MetricsSeries::new(config.metrics.series_capacity),
            next_metrics_tick: config.metrics.sim_cadence_cycles.max(1),
            config,
        }
    }

    /// Record one lifecycle event in virtual time.  The epoch stamp is the
    /// simulated commit count — the same causal clock the native recorder
    /// reads off the commit log.
    fn emit(&mut self, rank: u32, site: u32, ts: u64, kind: EventKind) {
        if !self.config.trace {
            return;
        }
        self.events.push(TraceEvent {
            ts,
            rank,
            site,
            epoch: self.sim_commits,
            kind,
        });
    }

    /// The live grain of `region`: the per-region map, falling back to
    /// the controller's initial grain (control enabled) or the
    /// configured grain (disabled).
    fn grain_of_region(&self, region: u64) -> u32 {
        self.grains.grain_of_region(region)
    }

    /// The live grain tracking `addr` right now.
    fn grain_at(&self, addr: Addr) -> u32 {
        self.grains.grain_at(addr)
    }

    /// `addr`'s conflict-detection range id at its region's current
    /// grain, **prefixed with the region id**: numeric `addr >> grain`
    /// ids of different regions at different live grains collide (the
    /// native log dedups by concrete slot for the same reason), and a
    /// collision here would manufacture phantom cross-region conflicts
    /// in the replay.  The suffix is the offset-range within the region,
    /// which fits in `region_log2 - floor` bits at any live grain.
    fn range_at(&self, addr: Addr) -> u64 {
        self.grains.range_at(addr)
    }

    /// Cost of executing the whole trace sequentially.
    pub fn sequential_cycles(recording: &Recording, cost: &CostModel) -> u64 {
        recording
            .nodes
            .iter()
            .flat_map(|n| n.events.iter())
            .map(|e| match e {
                SimEvent::Seg(s) => cost.segment_cycles(s.work, s.loads, s.stores),
                _ => 0,
            })
            .sum()
    }

    /// Run the simulation to completion.  With `sim_threads > 1` the
    /// event loop runs on this thread while `sim_threads - 1` scoped
    /// shard workers precompute segment effects; the pop order — and
    /// therefore the serialized report — is identical either way.
    pub fn run(mut self) -> SimResult {
        let threads = self.config.sim_threads.max(1);
        if threads > 1 {
            self.run_warp(threads - 1);
        } else {
            self.event_loop();
        }
        self.finish()
    }

    /// The sequential discrete-event loop — the single source of truth
    /// for event ordering in both modes.
    fn event_loop(&mut self) {
        let root = self.spawn_fiber(0, false, 0, 0, 0, ForkModel::Mixed);
        debug_assert_eq!(root, 0);
        self.schedule(root, 0);
        while let Some(Reverse((time, _, fid))) = self.queue.pop() {
            self.pop_count += 1;
            if self.pop_count.is_multiple_of(FOSSIL_SWEEP_POPS) {
                self.fossil_collect(time);
            }
            // Sample off the virtual clock: pop times (and everything a
            // scrape reads) are identical at every `sim_threads`, so the
            // series is too.
            if self.config.metrics.enabled && time >= self.next_metrics_tick {
                self.sample_metrics(time);
            }
            if self.fibers[fid].retired {
                continue;
            }
            self.resume(fid, time);
        }
    }

    /// Append one snapshot stamped at the largest cadence boundary not
    /// past `now`, and re-arm the next tick.
    fn sample_metrics(&mut self, now: u64) {
        let cadence = self.config.metrics.sim_cadence_cycles.max(1);
        let ts = now - now % cadence;
        let snapshot = self.scrape_metrics(ts);
        self.metrics_series.push(snapshot);
        self.next_metrics_tick = ts + cadence;
    }

    /// Aggregate the scheduler's accounting into one [`MetricsSnapshot`]
    /// at virtual timestamp `ts`, through the same naming/derivation path
    /// the native registry uses (every counter the scheduler owns is
    /// supplied as an override).  Time Warp telemetry is deliberately
    /// excluded — it varies with `sim_threads` and would break the
    /// series' byte identity.
    fn scrape_metrics(&self, ts: u64) -> MetricsSnapshot {
        // Counters carried in fiber stats merge into `spec_stats` only at
        // retirement; fold the live fibers (the root included — its stats
        // never merge) in for a current view.  Vec order, deterministic.
        let mut totals = self.spec_stats.clone();
        for fiber in &self.fibers {
            if !fiber.retired {
                totals.merge(&fiber.stats);
            }
        }
        let counters = &totals.counters;
        let mut extras = ScrapeExtras {
            counter_overrides: vec![
                (CounterId::Forks, self.sim_forks),
                (CounterId::FailedForks, counters.failed_forks),
                (CounterId::ThrottledForks, counters.throttled_forks),
                (CounterId::Commits, self.committed),
                (CounterId::Rollbacks, self.rolled_back),
                (CounterId::rollback_reason(0), self.rolled_back_by_reason[0]),
                (CounterId::rollback_reason(1), self.rolled_back_by_reason[1]),
                (CounterId::rollback_reason(2), self.rolled_back_by_reason[2]),
                (CounterId::rollback_reason(3), self.rolled_back_by_reason[3]),
                (CounterId::Retries, self.retried),
                (CounterId::TargetedDooms, counters.targeted_dooms),
                (CounterId::CascadeFallbacks, counters.cascade_fallbacks),
                (CounterId::PrecisePasses, counters.precise_passes),
                (CounterId::AdoptedThreads, counters.adopted_threads),
                (
                    CounterId::FalseSharingSuspects,
                    counters.false_sharing_suspects,
                ),
                // Wasted/committed cycles count *settled* fibers only
                // (mirroring the native push sites, which fire at joins).
                (
                    CounterId::WastedCycles,
                    self.spec_stats.get(Phase::WastedWork),
                ),
                (CounterId::CommittedCycles, self.spec_stats.get(Phase::Work)),
            ],
            extra_counters: vec![
                ("log_commits".to_string(), self.sim_commits),
                ("log_stamps".to_string(), self.sim_stamps),
                ("log_cas_retries".to_string(), self.sim_cas_retries),
                ("log_ring_overflows".to_string(), self.sim_ring_overflows),
                ("log_regrains".to_string(), self.sim_regrains),
                ("log_reader_spills".to_string(), 0),
            ],
            gauge_overrides: vec![(
                GaugeId::InFlightSpeculations,
                self.active_speculative as f64,
            )],
            ..ScrapeExtras::default()
        };
        for site in self.governor.snapshot() {
            let site_label = site.site.to_string();
            extras.labeled.push(LabeledGauge::new(
                "site_rollback_rate",
                "site",
                site_label.clone(),
                site.rollback_rate,
            ));
            extras.labeled.push(LabeledGauge::new(
                "site_throttled",
                "site",
                site_label,
                site.throttled as f64,
            ));
        }
        // Grain census over touched regions — BTreeMap, because HashMap
        // iteration order would leak into the serialized series.
        let mut census: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for &region in self.region_telemetry.keys() {
            *census.entry(self.grain_of_region(region)).or_insert(0) += 1;
        }
        for (grain_log2, regions) in census {
            extras.labeled.push(LabeledGauge::new(
                "grain_regions",
                "grain_log2",
                grain_log2.to_string(),
                regions as f64,
            ));
        }
        extras
            .labeled
            .extend(phase_share_gauges(&self.latency.approx_totals()));
        self.metrics_registry.scrape(ts, extras)
    }

    /// Drive the event loop with `workers` Time Warp shard workers
    /// precomputing segment effects on scoped threads.
    fn run_warp(&mut self, workers: usize) {
        let recording = self.recording;
        let shared = Arc::new(WarpShared {
            log: Arc::clone(&self.publishes),
            grains: Arc::clone(&self.grains),
            cost: self.config.cost,
            mvcc: self.config.recovery.is_mvcc(),
            ring_depth: self.config.commit_log.ring_depth as usize,
            computed: AtomicU64::new(0),
        });
        let mut senders = Vec::with_capacity(workers);
        let mut receivers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = std::sync::mpsc::channel();
            senders.push(tx);
            receivers.push(rx);
        }
        self.warp = Some(WarpState {
            senders,
            policy: self.config.shard_policy,
            shared: Arc::clone(&shared),
        });
        std::thread::scope(|scope| {
            for rx in receivers {
                let shared = Arc::clone(&shared);
                scope.spawn(move || parsim::worker_loop(recording, rx, shared));
            }
            self.event_loop();
            // Drop every sender so the shards drain their queues and
            // exit before the scope joins them.
            if let Some(warp) = self.warp.as_mut() {
                warp.senders.clear();
            }
        });
    }

    /// GVT sweep: truncate publish-log entries no live speculative
    /// reader — and no future one, since fibers fork with
    /// `start_time >=` the current pop time — can ever match.  Every
    /// conflict scan filters on a strict `time > threshold` with
    /// `threshold >= start_time`, so entries at or below the horizon
    /// are fossils.
    fn fossil_collect(&mut self, now: u64) {
        let mut horizon = now;
        for fiber in &self.fibers {
            if fiber.speculative && !fiber.retired {
                horizon = horizon.min(fiber.start_time);
            }
        }
        self.fossil_collected += self.publishes.truncate_through(horizon);
    }

    /// Build the [`SimResult`] after the event loop has drained.
    fn finish(mut self) -> SimResult {
        let runtime = {
            let root_fiber = &self.fibers[0];
            root_fiber.finished.unwrap_or(root_fiber.time)
        };
        // One final sample at the end of virtual time, so short runs that
        // never crossed a cadence boundary still export a snapshot.
        if self.config.metrics.enabled {
            let snapshot = self.scrape_metrics(runtime);
            self.metrics_series.push(snapshot);
        }
        let root_fiber = &self.fibers[0];
        // Census of the live per-region grains over touched regions —
        // what the (simulated) grain controller converged to.
        let mut census: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for &region in self.region_telemetry.keys() {
            *census.entry(self.grain_of_region(region)).or_insert(0) += 1;
        }
        let report = RunReport {
            critical: root_fiber.stats.clone(),
            speculative: self.spec_stats.clone(),
            committed_threads: self.committed,
            rolled_back_threads: self.rolled_back,
            retried_threads: self.retried,
            rollback_reasons: self.rolled_back_by_reason,
            runtime,
            sites: self.governor.snapshot(),
            // Simulated log traffic: publish batches, range stamps at the
            // live per-region grains, and controller regrains.  Lock time
            // is a wall-clock quantity and stays zero; the lock *cost* is
            // charged in virtual cycles through the cost model instead.
            commit_log: CommitLogStats {
                commits: self.sim_commits,
                stamp_writes: self.sim_stamps,
                lock_ns: 0,
                cas_retries: self.sim_cas_retries,
                regrains: self.sim_regrains,
                // The simulator models reader tracking abstractly and
                // never spills past the bitmask window.
                reader_spills: 0,
                ring_overflows: self.sim_ring_overflows,
                grain_log2: self.config.commit_log.grain_log2,
                shards: self.config.commit_log.shards,
                ring_depth: self.config.commit_log.ring_depth,
            },
            region_grains: census.into_iter().collect(),
            latency: self.latency.report(),
        };
        let warp_stats = WarpStats {
            sim_threads: self.config.sim_threads.max(1),
            requests: self.warp_requests,
            advances_applied: self.warp_advances_applied,
            advances_overtaken: self.warp_advances_overtaken,
            advances_computed: self
                .warp
                .as_ref()
                .map_or(0, |w| w.shared.computed.load(Ordering::Relaxed)),
            shard_rollbacks: self.warp_shard_rollbacks,
            fossil_collected: self.fossil_collected,
        };
        SimResult {
            report,
            sequential_cycles: Self::sequential_cycles(self.recording, &self.config.cost),
            parallel_cycles: runtime,
            tasks: self.recording.task_count(),
            events: self.events,
            warp: warp_stats,
            metrics: self.metrics_series,
        }
    }

    fn spawn_fiber(
        &mut self,
        node: NodeId,
        speculative: bool,
        cpu: usize,
        start: u64,
        site: u32,
        model: ForkModel,
    ) -> usize {
        let fiber = Fiber::new(cpu, speculative, node, start, site, model);
        if speculative {
            self.sim_forks += 1;
        }
        self.fibers.push(fiber);
        self.fibers.len() - 1
    }

    fn schedule(&mut self, fid: usize, time: u64) {
        self.queue_seq += 1;
        self.queue.push(Reverse((time, self.queue_seq, fid)));
    }

    /// Publish a set of written addresses to main memory at `time`,
    /// dooming any in-flight speculative fiber that already read a
    /// commit-log *range* the batch stamps (at word grain this is exact;
    /// coarser grains add false sharing but never miss a conflict).  The
    /// publish is also logged so that reads registered later (at segment
    /// completion) can be checked against it.
    ///
    /// Under targeted recovery the newly doomed fibers (the registered
    /// readers of the stamped ranges) are additionally asked to **stop at
    /// their next check point** instead of burning their whole conflict
    /// window; the returned cycles are the writer's doom-signalling cost
    /// (`CostModel::doom_signal` per victim, 0 in cascade mode), which
    /// the caller adds to the writer's clock.
    fn publish(&mut self, writes: &HashSet<Addr>, time: u64, writer: usize) -> u64 {
        if writes.is_empty() {
            return 0;
        }
        let targeted = self.config.recovery.mode == RecoveryMode::Targeted;
        // Coarsen at each write's *current per-region* grain, counting the
        // simulated stamp traffic (one stamp per distinct range — the
        // column a coarser grain shrinks) and the per-region telemetry
        // the grain controller runs on.
        let mut ranges: HashSet<u64> = HashSet::new();
        let mut write_info: Vec<(Addr, u64, u64)> = Vec::with_capacity(writes.len());
        self.sim_commits += 1;
        for &w in writes {
            let (range, region) = (self.range_at(w), w >> self.region_log2);
            write_info.push((w, range, region));
            if ranges.insert(range) {
                self.sim_stamps += 1;
                self.region_telemetry.entry(region).or_default()[0] += 1;
            }
        }
        let mut newly_doomed: Vec<usize> = Vec::new();
        let mvcc = self.config.recovery.is_mvcc();
        let ring_depth = self.config.commit_log.ring_depth as usize;
        for (fid, fiber) in self.fibers.iter_mut().enumerate() {
            if fid == writer || !fiber.speculative || fiber.retired {
                continue;
            }
            if fiber.start_time >= time {
                continue;
            }
            if fiber.doomed.is_some() {
                // Already doomed: a later publish that hits an actually
                // read word upgrades a false-sharing classification to a
                // genuine conflict, matching the native classifier (which
                // re-checks every read value at join time).
                if fiber.doomed_false_sharing && intersects(writes, &fiber.reads) {
                    fiber.doomed_false_sharing = false;
                }
                continue;
            }
            // Word overlap is checked in addition to range overlap so a
            // true conflict is never missed even if a regrain re-indexed
            // the ranges between the read and this publish.
            let word_hit = intersects(writes, &fiber.reads);
            if word_hit || intersects(&ranges, &fiber.read_ranges) {
                if mvcc && !word_hit {
                    // mvcc precise validation: the publish stamped a range
                    // the fiber read, but the version ring's footprint
                    // proves every published word missed the fiber's
                    // actual reads — the fiber survives undoomed, no value
                    // re-read and no join-time retry.  Only a ring
                    // overflow (more publishes into the range than the
                    // ring holds since the fiber started — the sim's
                    // publish counter stands in for the shard version, a
                    // conservative proxy for the entry's read stamp)
                    // forces the legacy range-conservative doom.
                    let overflow = fiber.read_ranges.iter().any(|r| {
                        ranges.contains(r)
                            && self.publishes.with(|log| {
                                log.all()
                                    .iter()
                                    .filter(|e| e.time > fiber.start_time && e.ranges.contains(r))
                                    .count()
                            }) + 1
                                >= ring_depth
                    });
                    if !overflow {
                        fiber.stats.counters.precise_passes += 1;
                        continue;
                    }
                    self.sim_ring_overflows += 1;
                }
                fiber.doomed = Some(SpecFailure::ReadConflict);
                fiber.doomed_false_sharing = !word_hit;
                // Lowest qualifying region, not "first": write_info is
                // built from a HashSet, whose order must never leak into
                // the deterministic replay.
                fiber.conflict_region = write_info
                    .iter()
                    .filter(|(w, range, _)| {
                        fiber.reads.contains(w) || fiber.read_ranges.contains(range)
                    })
                    .map(|(_, _, region)| *region)
                    .min();
                // Mirror the native in-flight retry: a false-sharing
                // victim under value prediction re-validates and keeps
                // running (it retries at its join), so only genuinely
                // stale readers are stopped early.
                let survives_by_retry =
                    self.config.recovery.value_predict && fiber.doomed_false_sharing;
                if targeted && !survives_by_retry {
                    newly_doomed.push(fid);
                }
            }
        }
        self.publishes.push(PubEntry {
            time,
            words: writes.clone(),
            ranges,
        });
        let mut cost = self.config.cost.doom_cycles(newly_doomed.len() as u64);
        if !newly_doomed.is_empty() {
            self.fibers[writer].stats.counters.targeted_dooms += newly_doomed.len() as u64;
            let writer_rank = self.fibers[writer].cpu as u32;
            let writer_site = self.fibers[writer].site;
            self.emit(
                writer_rank,
                writer_site,
                time,
                EventKind::Doom {
                    source: DoomSource::Commit,
                },
            );
            for fid in newly_doomed {
                self.request_stop(fid, time);
            }
        }
        self.publish_count += 1;
        cost += self.tick_grain_controller(time);
        cost
    }

    /// Every `tick_commits` publishes, run one deterministic grain
    /// controller tick: snapshot the per-region telemetry (ascending by
    /// region), apply the regrains to the region-grain map, and
    /// conservatively doom every in-flight reader of a regrained region
    /// (mirroring the native whole-region flush — value prediction
    /// retries them at their joins).  Returns the cycles charged to the
    /// publishing fiber: `regrain_per_slot` per flushed floor-grain slot
    /// plus `doom_signal` per doomed reader.
    fn tick_grain_controller(&mut self, time: u64) -> u64 {
        let Some(controller) = self.grain_controller.as_mut() else {
            return 0;
        };
        if !self
            .publish_count
            .is_multiple_of(self.config.grain_control.tick_commits.max(1))
        {
            return 0;
        }
        let mut profiles: Vec<RegionProfile> = Vec::new();
        let floor = self.config.commit_log.grain_log2;
        let mut regions: Vec<u64> = self.region_telemetry.keys().copied().collect();
        regions.sort_unstable();
        for region in regions {
            let [stamps, conflicts, false_sharing, retries] = self.region_telemetry[&region];
            profiles.push(RegionProfile {
                region,
                grain_log2: self.grains.grain_of_region(region),
                stamps,
                conflicts,
                false_sharing,
                retries,
            });
        }
        let actions = controller.tick(&profiles);
        if actions.is_empty() {
            return 0;
        }
        // Control-plane events use the lane past the last CPU, like the
        // native recorder's dedicated grain-controller lane.
        let control_lane = (self.config.num_cpus + 1) as u32;
        let action_count = actions.len() as u32;
        let slots_per_region = 1u64 << (self.region_log2 - floor);
        let mut cost = 0;
        let mut doomed = 0u64;
        for action in actions {
            let from = self.grain_of_region(action.region);
            // Driver-only regrain: bumps the shared table's epoch, which
            // invalidates every in-flight shard advance at its pop.
            self.grains.set(action.region, action.new_grain_log2);
            self.sim_regrains += 1;
            cost += self.config.cost.regrain_cycles(slots_per_region);
            self.emit(
                control_lane,
                0,
                time,
                EventKind::Regrain {
                    region: action.region,
                    from,
                    to: action.new_grain_log2,
                },
            );
            // The native regrain stamps the whole region and dooms its
            // registered readers; mirror it by dooming every in-flight
            // speculative fiber with a read in the region.  The doom is
            // range-induced (no word was actually written), so value
            // prediction clears it at the join.
            let mut doomed_here = 0u64;
            for fiber in self.fibers.iter_mut() {
                if !fiber.speculative
                    || fiber.retired
                    || fiber.doomed.is_some()
                    || fiber.start_time >= time
                {
                    continue;
                }
                if fiber
                    .reads
                    .iter()
                    .any(|a| a >> self.region_log2 == action.region)
                {
                    fiber.doomed = Some(SpecFailure::ReadConflict);
                    fiber.doomed_false_sharing = true;
                    fiber.conflict_region = Some(action.region);
                    doomed_here += 1;
                }
            }
            doomed += doomed_here;
            if doomed_here > 0 {
                self.emit(
                    control_lane,
                    0,
                    time,
                    EventKind::Doom {
                        source: DoomSource::Regrain,
                    },
                );
            }
        }
        self.emit(
            control_lane,
            0,
            time,
            EventKind::GrainTick {
                actions: action_count,
            },
        );
        cost + self.config.cost.doom_cycles(doomed)
    }

    fn fork_allowed(&self, forker: usize, model: ForkModel) -> bool {
        let speculative = self.fibers[forker].speculative;
        let is_most = if self.active_speculative == 0 {
            !speculative
        } else {
            self.most_speculative == Some(forker)
        };
        model.allows_fork(speculative, is_most)
    }

    fn acquire_cpu(&mut self) -> Option<usize> {
        for (i, free) in self.cpu_free.iter_mut().enumerate() {
            if *free {
                *free = false;
                return Some(i + 1);
            }
        }
        None
    }

    fn release_cpu(&mut self, cpu: usize) {
        self.cpu_free[cpu - 1] = true;
    }

    /// Advance fiber `fid` at global time `now`.
    fn resume(&mut self, fid: usize, now: u64) {
        if self.fibers[fid].time < now {
            self.fibers[fid].time = now;
        }

        // A completed work segment: apply its effects.
        if self.fibers[fid].seg_in_flight {
            self.apply_segment_effects(fid);
            if self.fibers[fid].stop_requested {
                self.finish_fiber(fid);
                return;
            }
        }

        // A child we were blocked on has stopped: perform the join.
        if let Some(child) = self.fibers[fid].pending_join.take() {
            let idle = self.fibers[fid]
                .time
                .saturating_sub(self.fibers[fid].blocked_since);
            self.fibers[fid].stats.add(Phase::Idle, idle);
            if !self.process_join(fid, child) {
                return;
            }
        }

        loop {
            if self.fibers[fid].speculative && self.fibers[fid].stop_requested {
                self.finish_fiber(fid);
                return;
            }
            let frame = *self.fibers[fid].frames.last().expect("frame present");
            let events = &self.recording.nodes[frame.node].events;
            if frame.ip >= events.len() {
                if self.fibers[fid].frames.len() > 1 {
                    self.fibers[fid].frames.pop();
                    continue;
                }
                self.finish_fiber(fid);
                return;
            }
            match events[frame.ip].clone() {
                SimEvent::Seg(seg) => {
                    let cost = &self.config.cost;
                    let cycles = if self.fibers[fid].speculative {
                        cost.segment_cycles_speculative(seg.work, seg.loads, seg.stores)
                    } else {
                        cost.segment_cycles(seg.work, seg.loads, seg.stores)
                    };
                    let start = self.fibers[fid].time;
                    let end = start + cycles;
                    self.fibers[fid].segment_started = start;
                    self.fibers[fid].seg_in_flight = true;
                    if self.warp.is_some() {
                        // Time Warp: hand the segment's effect computation
                        // to its shard worker while it is "in flight".
                        self.post_advance(fid, frame.node, frame.ip);
                    }
                    self.schedule(fid, end);
                    return;
                }
                SimEvent::Fork {
                    child,
                    model,
                    point,
                } => {
                    self.process_fork(fid, child, model, point);
                    self.bump_ip(fid);
                }
                SimEvent::Join { child } => {
                    self.bump_ip(fid);
                    let child_fiber = self.fibers[fid].child_fibers.remove(&child);
                    match child_fiber {
                        None => {
                            // Not speculated: execute the child inline.
                            self.fibers[fid].frames.push(Frame {
                                node: child,
                                ip: 0,
                                reexec: false,
                            });
                        }
                        Some(cf) => {
                            if self.fibers[cf].finished.is_some() {
                                if !self.process_join(fid, cf) {
                                    return;
                                }
                            } else {
                                // Early synchronization: ask the child to
                                // stop at its next check point.
                                let now = self.fibers[fid].time;
                                self.fibers[fid].blocked_since = now;
                                self.fibers[fid].pending_join = Some(cf);
                                self.fibers[cf].waiter = Some(fid);
                                self.request_stop(cf, now);
                                return;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Ask fiber `cf` to stop at its next check point.
    fn request_stop(&mut self, cf: usize, now: u64) {
        self.fibers[cf].stop_requested = true;
        if self.fibers[cf].seg_in_flight {
            // Stops when the in-flight segment (its next check point)
            // completes; the completion event is already scheduled.
            return;
        }
        if self.fibers[cf].pending_join.is_some() {
            // The child is itself blocked waiting for a grandchild.  It
            // stops right away; its joiner will inherit that pending join.
            self.fibers[cf].time = self.fibers[cf].time.max(now);
            self.finish_fiber(cf);
            return;
        }
        if self.fibers[cf].finished.is_none() && self.fibers[cf].start_time > now {
            // Not even started: it stops immediately with no work done.
            self.fibers[cf].time = self.fibers[cf].start_time;
            self.finish_fiber(cf);
        }
        // Otherwise the fiber has a queued resume and will observe the
        // stop request at its next scheduling point.
    }

    fn bump_ip(&mut self, fid: usize) {
        let frame = self.fibers[fid].frames.last_mut().expect("frame present");
        frame.ip += 1;
    }

    /// Post the just-scheduled segment's effect computation to its shard
    /// worker.  The request captures the publish-log length and grain
    /// epoch the driver observes *now*; validation at the completion pop
    /// re-checks both, so the worker's answer is only ever used when it
    /// is provably identical to an inline recomputation.
    fn post_advance(&mut self, fid: usize, node: NodeId, ip: usize) {
        let Some(warp) = &self.warp else { return };
        if warp.senders.is_empty() {
            return;
        }
        let scanned_to = self.publishes.len_abs();
        let epoch = self.grains.epoch();
        let slot = Arc::new(parking_lot::Mutex::new(None));
        let request = AdvanceRequest {
            node,
            ip,
            speculative: self.fibers[fid].speculative,
            seg_start: self.fibers[fid].segment_started,
            scanned_to,
            slot: Arc::clone(&slot),
        };
        let shard = warp
            .policy
            .shard_of(self.fibers[fid].cpu, fid, warp.senders.len());
        // A send failure only costs the precompute; the completion pop
        // falls back to the inline path regardless.
        let _ = warp.senders[shard].send(request);
        self.warp_requests += 1;
        self.fibers[fid].advance = Some(PendingAdvance {
            slot,
            scanned_to,
            epoch,
        });
    }

    /// True when a publish-log entry the posted advance could not see
    /// (absolute index `>= scanned_to`) intersects the segment's reads —
    /// the Time Warp causality check.  A pure function of the event
    /// schedule: the suffix contents never depend on worker timing.
    fn advance_suffix_dirty(&self, seg: &Segment, seg_start: u64, scanned_to: u64) -> bool {
        if self.publishes.len_abs() == scanned_to {
            return false;
        }
        let probes: Vec<(Addr, u64)> = seg.reads.iter().map(|&a| (a, self.range_at(a))).collect();
        self.publishes.with(|log| {
            log.suffix(scanned_to).iter().any(|e| {
                e.time > seg_start
                    && probes
                        .iter()
                        .any(|(a, r)| e.words.contains(a) || e.ranges.contains(r))
            })
        })
    }

    /// Inline (sequential-path) effect computation over the full log.
    fn compute_effects_inline(
        &self,
        seg: &Segment,
        speculative: bool,
        seg_start: u64,
    ) -> SegEffects {
        parsim::compute_segment_effects(
            seg,
            speculative,
            seg_start,
            &self.config.cost,
            &self.grains,
            &self.publishes,
            self.publishes.len_abs(),
            self.config.recovery.is_mvcc(),
            self.config.commit_log.ring_depth as usize,
        )
    }

    /// The segment's effects — from the shard worker's precompute when
    /// it validates, inline otherwise.  Validation is deterministic: a
    /// regrain since the post (stale range ids) or a publish in the
    /// unscanned suffix that touches this segment's reads discards the
    /// precompute — one **shard rollback** — and a missing answer from a
    /// slow worker merely means the driver overtook it.  In both fallback
    /// cases the inline recomputation over the full log is exactly the
    /// sequential computation, and when the precompute *does* validate,
    /// the clean suffix plus unchanged epoch make its prefix scan equal
    /// to the full scan (every predicate filters on strict
    /// `time > seg_start`), so the applied effects are identical either
    /// way.
    fn obtain_segment_effects(
        &mut self,
        seg: &Segment,
        fid: usize,
        speculative: bool,
        seg_start: u64,
    ) -> SegEffects {
        let Some(pending) = self.fibers[fid].advance.take() else {
            return self.compute_effects_inline(seg, speculative, seg_start);
        };
        let stale_grains = pending.epoch != self.grains.epoch();
        let dirty = stale_grains
            || (speculative && self.advance_suffix_dirty(seg, seg_start, pending.scanned_to));
        if dirty {
            self.warp_shard_rollbacks += 1;
            return self.compute_effects_inline(seg, speculative, seg_start);
        }
        let answer = pending.slot.lock().take();
        match answer {
            Some(fx) => {
                self.warp_advances_applied += 1;
                fx
            }
            None => {
                self.warp_advances_overtaken += 1;
                self.compute_effects_inline(seg, speculative, seg_start)
            }
        }
    }

    fn apply_segment_effects(&mut self, fid: usize) {
        let frame = *self.fibers[fid].frames.last().expect("frame present");
        let recording = self.recording;
        let node = &recording.nodes[frame.node];
        if let SimEvent::Seg(seg) = &node.events[frame.ip] {
            let speculative = self.fibers[fid].speculative;
            let seg_start = self.fibers[fid].segment_started;
            let fx = self.obtain_segment_effects(seg, fid, speculative, seg_start);
            {
                let fiber = &mut self.fibers[fid];
                fiber.stats.counters.loads += seg.loads;
                fiber.stats.counters.stores += seg.stores;
                fiber.stats.add(Phase::Work, fx.cycles);
                for (addr, range) in &fx.seg_read_ranges {
                    if !fiber.writes.contains(addr) {
                        fiber.reads.insert(*addr);
                        fiber.read_ranges.insert(*range);
                    }
                }
                fiber.writes.extend(seg.writes.iter().copied());
            }
            if speculative {
                // The reads of this segment were checked against anything
                // published to main memory while the segment executed —
                // range-grained like the in-flight doom check, with the
                // word-level overlap checked too so a regrain between the
                // publish and this check can never hide a true conflict.
                if fx.hit {
                    let word_hit = fx.word_hit;
                    // mvcc precise validation for late-registered reads:
                    // a range-only hit whose publishes all still fit in
                    // the range's version ring is proven word-disjoint by
                    // the footprints — a precise pass, not a doom.
                    let mvcc = self.config.recovery.is_mvcc();
                    let range_only = mvcc && !word_hit && self.fibers[fid].doomed.is_none();
                    let overflow = range_only && fx.overflow;
                    if range_only && !overflow {
                        self.fibers[fid].stats.counters.precise_passes += 1;
                    } else {
                        if range_only {
                            self.sim_ring_overflows += 1;
                        }
                        match self.fibers[fid].doomed {
                            None => {
                                self.fibers[fid].doomed = Some(SpecFailure::ReadConflict);
                                self.fibers[fid].doomed_false_sharing = !word_hit;
                                self.fibers[fid].conflict_region = fx.region;
                            }
                            // Upgrade an earlier false-sharing
                            // classification when this segment's reads
                            // were genuinely hit.
                            Some(_) if word_hit => self.fibers[fid].doomed_false_sharing = false,
                            Some(_) => {}
                        }
                    }
                }
            } else {
                // Non-speculative writes reach main memory immediately,
                // surgically dooming their registered readers.
                let writes = seg.writes.clone();
                let time = self.fibers[fid].time;
                let doom_cost = self.publish(&writes, time, fid);
                self.fibers[fid].time += doom_cost;
            }
        }
        self.fibers[fid].seg_in_flight = false;
        self.bump_ip(fid);
    }

    fn process_fork(&mut self, fid: usize, child: NodeId, recorded_model: ForkModel, point: u32) {
        let forker_rank = self.fibers[fid].cpu as u32;
        let now = self.fibers[fid].time;
        self.emit(forker_rank, point, now, EventKind::ForkAttempt);
        // Mirror the native recovery engine: a speculative fiber
        // executing a rollback-inherited frame may not re-speculate (its
        // children would read underneath the uncommitted overlay); the
        // re-execution stays inline.
        if self.fibers[fid].speculative && self.fibers[fid].frames.iter().any(|f| f.reexec) {
            self.fibers[fid].stats.counters.failed_forks += 1;
            self.emit(
                forker_rank,
                point,
                now,
                EventKind::ForkDenied {
                    policy: DenyPolicy::Reexec,
                },
            );
            return;
        }
        let requested = self.config.fork_model.unwrap_or(recorded_model);
        let cost = self.config.cost;

        // The governor may suppress the fork or pick a per-site model; a
        // denial is decided before any fork overhead is spent, exactly as
        // in the native runtime.
        let model = match self.governor.decide(point, requested) {
            ForkDecision::Allow(model) => {
                self.emit(
                    forker_rank,
                    point,
                    now,
                    EventKind::GovernorDecision { allowed: true },
                );
                model
            }
            ForkDecision::Deny => {
                self.fibers[fid].stats.counters.throttled_forks += 1;
                self.emit(
                    forker_rank,
                    point,
                    now,
                    EventKind::GovernorDecision { allowed: false },
                );
                self.emit(
                    forker_rank,
                    point,
                    now,
                    EventKind::ForkDenied {
                        policy: DenyPolicy::Governor,
                    },
                );
                return;
            }
        };

        // Scanning for an idle CPU costs time on the forker.
        self.fibers[fid].time += cost.find_cpu;
        self.fibers[fid].stats.add(Phase::FindCpu, cost.find_cpu);

        if !self.fork_allowed(fid, model) {
            self.fibers[fid].stats.counters.failed_forks += 1;
            let now = self.fibers[fid].time;
            self.emit(
                forker_rank,
                point,
                now,
                EventKind::ForkDenied {
                    policy: DenyPolicy::Model,
                },
            );
            return;
        }
        let Some(cpu) = self.acquire_cpu() else {
            self.fibers[fid].stats.counters.failed_forks += 1;
            let now = self.fibers[fid].time;
            self.emit(
                forker_rank,
                point,
                now,
                EventKind::ForkDenied {
                    policy: DenyPolicy::NoCpu,
                },
            );
            return;
        };
        self.fibers[fid].time += cost.fork;
        self.fibers[fid].stats.add(Phase::Fork, cost.fork);
        self.fibers[fid].stats.counters.forks += 1;

        let start = self.fibers[fid].time + cost.spawn_latency;
        let child_fiber = self.spawn_fiber(child, true, cpu, start, point, model);
        self.emit(
            cpu as u32,
            point,
            start,
            EventKind::SpecStart {
                parent: forker_rank,
            },
        );
        self.governor.record_fork(point, model);
        self.fibers[fid].child_fibers.insert(child, child_fiber);
        self.most_speculative = Some(child_fiber);
        self.active_speculative += 1;
        self.schedule(child_fiber, start);
    }

    fn finish_fiber(&mut self, fid: usize) {
        if self.fibers[fid].finished.is_some() {
            return;
        }
        let time = self.fibers[fid].time;
        self.fibers[fid].finished = Some(time);
        if let Some(waiter) = self.fibers[fid].waiter {
            if self.fibers[waiter].pending_join == Some(fid) {
                self.schedule(waiter, time);
            }
        }
    }

    /// Whether fiber `cf` stopped before exhausting its own node's events.
    fn stopped_early(&self, cf: usize) -> bool {
        let fiber = &self.fibers[cf];
        if fiber.frames.len() > 1 || fiber.pending_join.is_some() {
            return true;
        }
        let frame = fiber.frames[0];
        frame.ip < self.recording.nodes[frame.node].events.len()
    }

    /// Join child fiber `cf` into parent fiber `fid`.  Returns `false`
    /// when the parent became blocked again (it inherited a pending join
    /// from an early-stopped child) and must not continue executing now.
    fn process_join(&mut self, fid: usize, cf: usize) -> bool {
        let cost = self.config.cost;
        let child_finish = self.fibers[cf].finished.expect("child stopped");
        let mut now = self.fibers[fid].time.max(child_finish);

        // Time the child spent waiting to be joined is speculative idle.
        let child_idle = now.saturating_sub(child_finish);
        self.fibers[cf].stats.add(Phase::Idle, child_idle);

        // Fixed synchronization bookkeeping on the joining thread.
        self.fibers[fid].stats.add(Phase::Join, cost.join);
        now += cost.join;

        // Validation (charged to the speculative path; the joiner idles).
        // The value comparison is per word; the commit-log probe is per
        // range, so coarser grains validate cheaper.
        let read_words = self.fibers[cf].reads.len() as u64;
        let read_ranges = self.fibers[cf].read_ranges.len() as u64;
        let write_words = self.fibers[cf].writes.len() as u64;
        let child_rank = self.fibers[cf].cpu as u32;
        let child_site = self.fibers[cf].site;
        self.emit(
            child_rank,
            child_site,
            now,
            EventKind::ValidateBegin {
                ranges: read_ranges as u32,
            },
        );
        let validation = cost.validation_cycles_grained(read_words, read_ranges);
        self.fibers[cf].stats.add(Phase::Validation, validation);
        self.fibers[fid].stats.add(Phase::Idle, validation);
        now += validation;
        self.latency.record(LatencyPhase::Validation, validation);

        let injected = self.draw_injected();
        let verdict: Result<(), SpecFailure> = if let Some(reason) = self.fibers[cf].doomed {
            // Recovery rung 1 — value-predict retry: a range-only
            // (false-sharing) conflict means every word the fiber read
            // still holds its first-read value, so a value re-validation
            // pass repairs the join in place, no re-execution.
            if reason == SpecFailure::ReadConflict
                && self.fibers[cf].doomed_false_sharing
                && self.config.recovery.value_predict
                && !injected
            {
                let retry = cost.retry_cycles(read_words);
                self.fibers[cf].stats.add(Phase::Validation, retry);
                self.fibers[fid].stats.add(Phase::Idle, retry);
                now += retry;
                self.latency.record(LatencyPhase::RepairRetry, retry);
                self.fibers[cf].stats.counters.retries_succeeded += 1;
                self.fibers[cf].retried = true;
                self.fibers[cf].doomed = None;
                self.fibers[cf].doomed_false_sharing = false;
                // Grain-control telemetry: a retry is a conflict the
                // current grain made cheap — split evidence.
                if let Some(region) = self.fibers[cf].conflict_region.take() {
                    self.region_telemetry.entry(region).or_default()[3] += 1;
                }
                self.retried += 1;
                Ok(())
            } else {
                Err(reason)
            }
        } else if injected {
            Err(SpecFailure::Injected)
        } else {
            Ok(())
        };

        // Price the version-ring probes the fiber survived on in flight —
        // deterministic (the count is already in the fiber's stats), and
        // far cheaper than the value-predict retries they replace.
        let precise = self.fibers[cf].stats.counters.precise_passes;
        if precise > 0 {
            let probe = cost.ring_probe_cycles(precise);
            self.fibers[cf].stats.add(Phase::Validation, probe);
            self.fibers[fid].stats.add(Phase::Idle, probe);
            now += probe;
            self.latency.record(LatencyPhase::Validation, probe);
        }
        let outcome = match &verdict {
            Ok(()) if self.fibers[cf].retried => ValidateOutcome::Retried,
            Ok(()) if precise > 0 => ValidateOutcome::PrecisePass,
            Ok(()) => ValidateOutcome::Clean,
            Err(SpecFailure::ReadConflict) if self.fibers[cf].doomed_false_sharing => {
                // Every word the fiber read still held its first-read
                // value — the doom is grain (or ring-overflow) induced
                // conservatism, not a proven dependence violation.
                ValidateOutcome::ConservativeDoom
            }
            Err(SpecFailure::ReadConflict) | Err(SpecFailure::LocalValidationFailed) => {
                ValidateOutcome::Conflict
            }
            Err(_) => ValidateOutcome::Failed,
        };
        self.emit(
            child_rank,
            child_site,
            now,
            EventKind::ValidateEnd { outcome },
        );

        let finalize = cost.finalize_cycles(read_words + write_words);
        let mut blocked = false;
        match verdict {
            Ok(()) => {
                // Publishing to main memory pays the commit log's
                // contention term — per-shard lock handoffs in locked
                // mode, per-contender CAS retries in lock-free mode;
                // absorbing into a speculative parent records nothing in
                // the log and pays neither.
                let shard_mask = (self.config.commit_log.shards as u64) - 1;
                let (shards_touched, cas_attempts) = if self.fibers[fid].speculative {
                    (0, 0)
                } else {
                    // Shards stripe *regions* (grain-independent), as in
                    // the native log since grain control landed.
                    let mut shards: HashSet<u64> = HashSet::new();
                    shards.extend(
                        self.fibers[cf]
                            .writes
                            .iter()
                            .map(|w| (w >> self.region_log2) & shard_mask),
                    );
                    // Deterministic lock-free contention model: every
                    // *other* in-flight speculative fiber whose buffered
                    // writes map into a touched shard is one potential
                    // same-shard contender, costing this batch one CAS
                    // retry.  Disjoint-shard committers stay free — the
                    // whole point of the CAS-published slots.
                    let attempts = if self.config.commit_log.lock_free {
                        self.fibers
                            .iter()
                            .enumerate()
                            .filter(|&(i, f)| {
                                i != cf && i != fid && f.speculative && f.finished.is_none()
                            })
                            .filter(|(_, f)| {
                                f.writes.iter().any(|w| {
                                    shards.contains(&((w >> self.region_log2) & shard_mask))
                                })
                            })
                            .count() as u64
                    } else {
                        0
                    };
                    (shards.len() as u64, attempts)
                };
                let contention = if self.config.commit_log.lock_free {
                    let retry_cycles = cost.cas_retry_cycles(cas_attempts);
                    if cas_attempts > 0 {
                        self.sim_cas_retries += cas_attempts;
                        // The histogram records the *attempt count*, not a
                        // duration, mirroring the native runtime.
                        self.latency
                            .record(LatencyPhase::CommitCasRetry, cas_attempts);
                        self.emit(
                            child_rank,
                            child_site,
                            now,
                            EventKind::CommitCasRetry {
                                attempts: cas_attempts,
                            },
                        );
                    }
                    retry_cycles
                } else {
                    let lock_wait = cost.commit_lock_cycles(shards_touched);
                    if shards_touched > 0 {
                        self.latency.record(LatencyPhase::CommitLockWait, lock_wait);
                        self.emit(
                            child_rank,
                            child_site,
                            now,
                            EventKind::CommitLockWait { ns: lock_wait },
                        );
                    }
                    lock_wait
                };
                let commit = cost.commit_cycles(write_words) + contention;
                self.fibers[cf].stats.add(Phase::Commit, commit);
                self.fibers[cf].stats.add(Phase::Finalize, finalize);
                self.fibers[fid].stats.add(Phase::Idle, commit + finalize);
                now += commit + finalize;

                let child_reads: Vec<(Addr, u64)> = self.fibers[cf]
                    .reads
                    .iter()
                    .map(|&a| (a, self.range_at(a)))
                    .collect();
                let child_writes: HashSet<Addr> = self.fibers[cf].writes.clone();
                if self.fibers[fid].speculative {
                    // Absorb into the speculative parent.
                    for (addr, range) in child_reads {
                        if !self.fibers[fid].writes.contains(&addr) {
                            self.fibers[fid].reads.insert(addr);
                            self.fibers[fid].read_ranges.insert(range);
                        }
                    }
                    self.fibers[fid].writes.extend(child_writes.iter().copied());
                } else {
                    now += self.publish(&child_writes, now, cf);
                }
                self.emit(child_rank, child_site, now, EventKind::Commit);
                self.latency.record(
                    LatencyPhase::ForkToCommit,
                    now.saturating_sub(self.fibers[cf].start_time),
                );
                self.fibers[fid].stats.counters.commits += 1;
                self.committed += 1;

                let early = self.stopped_early(cf);
                // Inherit the child's still-speculating children so their
                // joins (in the inherited frames) find them.
                let inherited: Vec<(NodeId, usize)> =
                    self.fibers[cf].child_fibers.drain().collect();
                self.fibers[fid].child_fibers.extend(inherited);

                if early {
                    // Stack frame reconstruction: the joiner continues the
                    // child's remaining execution.
                    let frames = self.fibers[cf].frames.clone();
                    self.fibers[fid].frames.extend(frames);
                    if let Some(gc) = self.fibers[cf].pending_join.take() {
                        // The child was blocked on its own child; the
                        // joiner takes over that join.
                        if self.fibers[gc].finished.is_some() {
                            self.fibers[fid].time = now;
                            self.retire_fiber(cf, true);
                            return self.process_join(fid, gc);
                        }
                        self.fibers[fid].blocked_since = now;
                        self.fibers[fid].pending_join = Some(gc);
                        self.fibers[gc].waiter = Some(fid);
                        blocked = true;
                    }
                }
                self.retire_fiber(cf, true);
            }
            Err(reason) => {
                // Remember why, for the governor's per-site profile.
                let _ = self.fibers[cf].doomed.get_or_insert(reason);
                if reason == SpecFailure::ReadConflict && self.fibers[cf].doomed_false_sharing {
                    self.fibers[cf].stats.counters.false_sharing_suspects += 1;
                }
                if reason == SpecFailure::ReadConflict {
                    // Grain-control telemetry: attribute the squash to the
                    // conflicting region (false-sharing flagged so the
                    // controller can split the grain out of the way).
                    let fs = self.fibers[cf].doomed_false_sharing;
                    if let Some(region) = self.fibers[cf].conflict_region.take() {
                        let counters = self.region_telemetry.entry(region).or_default();
                        counters[1] += 1;
                        if fs {
                            counters[2] += 1;
                        }
                    }
                }
                if reason == SpecFailure::ReadConflict
                    && self.config.recovery.mode != RecoveryMode::Targeted
                {
                    // The conflict was repaired by the squash cascade
                    // alone — the baseline the recovery sweep compares
                    // against (in targeted mode the doom was counted at
                    // publish time).
                    self.fibers[cf].stats.counters.cascade_fallbacks += 1;
                }
                self.fibers[cf].stats.add(Phase::Finalize, finalize);
                self.fibers[fid].stats.add(Phase::Idle, finalize);
                now += finalize;
                let targeted = self.config.recovery.mode == RecoveryMode::Targeted;
                let plan = if reason == SpecFailure::ReadConflict {
                    if targeted {
                        PlanArm::DoomSet
                    } else {
                        PlanArm::Cascade
                    }
                } else {
                    PlanArm::None
                };
                // The join-side repair work is the buffer discard plus the
                // re-execution frame push, both priced by `finalize`.
                self.latency.record(
                    if targeted {
                        LatencyPhase::RepairDoomSet
                    } else {
                        LatencyPhase::RepairCascade
                    },
                    finalize,
                );
                self.emit(
                    child_rank,
                    child_site,
                    now,
                    EventKind::Rollback {
                        reason: rollback_cause(reason),
                        plan,
                    },
                );
                self.fibers[fid]
                    .stats
                    .counters
                    .record_rollback(RollbackReason::from(reason));
                self.rolled_back += 1;
                self.rolled_back_by_reason[RollbackReason::from(reason).index()] += 1;
                // Cascading rollback confined to the child's subtree: every
                // speculative thread it spawned (and has not joined) is
                // discarded too.
                let grandchildren: Vec<usize> = self.fibers[cf]
                    .child_fibers
                    .drain()
                    .map(|(_, f)| f)
                    .collect();
                for gf in grandchildren {
                    self.cancel_subtree(gf);
                }
                if let Some(gc) = self.fibers[cf].pending_join.take() {
                    self.cancel_subtree(gc);
                }
                self.retire_fiber(cf, false);
                // The parent re-executes the child's region inline from the
                // beginning.
                let child_node = self.fibers[cf].frames[0].node;
                self.fibers[fid].frames.push(Frame {
                    node: child_node,
                    ip: 0,
                    reexec: true,
                });
            }
        }

        self.fibers[fid].time = now;
        !blocked
    }

    /// Cancel a speculative fiber and its whole subtree (cascading
    /// rollback).  Their work is wasted and their CPUs are reclaimed.
    fn cancel_subtree(&mut self, fid: usize) {
        if self.fibers[fid].retired {
            return;
        }
        let grandchildren: Vec<usize> = self.fibers[fid]
            .child_fibers
            .drain()
            .map(|(_, f)| f)
            .collect();
        for gf in grandchildren {
            self.cancel_subtree(gf);
        }
        if let Some(gc) = self.fibers[fid].pending_join.take() {
            self.cancel_subtree(gc);
        }
        self.rolled_back += 1;
        let reason = self.fibers[fid].doomed.unwrap_or(SpecFailure::Cascaded);
        self.rolled_back_by_reason[RollbackReason::from(reason).index()] += 1;
        self.retire_fiber(fid, false);
    }

    fn retire_fiber(&mut self, cf: usize, committed: bool) {
        if self.fibers[cf].retired {
            return;
        }
        self.fibers[cf].retired = true;
        if !committed {
            let wasted = self.fibers[cf].stats.mark_work_wasted();
            if self.fibers[cf].speculative {
                self.metrics_registry
                    .observe(HistId::RollbackWastedCycles, wasted);
            }
        }
        if self.fibers[cf].speculative {
            self.metrics_registry
                .observe(HistId::ThreadCycles, self.fibers[cf].stats.total());
        }
        if self.fibers[cf].speculative {
            let fiber = &self.fibers[cf];
            // Live grain of the fiber's traffic for the per-site grain
            // column (lowest written — else read — address, so HashSet
            // order cannot leak into the deterministic replay).
            let observed_grain = fiber
                .writes
                .iter()
                .min()
                .or_else(|| fiber.reads.iter().min())
                .map(|&a| self.grain_at(a))
                .unwrap_or(self.config.commit_log.grain_log2);
            let outcome = if committed {
                SiteOutcome::committed(
                    fiber.stats.get(Phase::Work),
                    fiber.stats.get(Phase::Idle),
                    fiber.model,
                )
                .with_retry(fiber.retried)
                .with_grain(observed_grain)
            } else {
                SiteOutcome::rolled_back(
                    fiber.doomed.unwrap_or(SpecFailure::Cascaded),
                    fiber.stats.get(Phase::WastedWork),
                    fiber.stats.get(Phase::Idle),
                    fiber.model,
                )
                .with_false_sharing(
                    fiber.doomed == Some(SpecFailure::ReadConflict) && fiber.doomed_false_sharing,
                )
                .with_grain(observed_grain)
            };
            self.governor.record_outcome(fiber.site, &outcome);
        }
        let stats = self.fibers[cf].stats.clone();
        self.spec_stats.merge(&stats);
        let cpu = self.fibers[cf].cpu;
        if cpu > 0 {
            self.release_cpu(cpu);
        }
        self.active_speculative = self.active_speculative.saturating_sub(1);
        if self.most_speculative == Some(cf) {
            self.most_speculative = None;
        }
    }

    fn draw_injected(&mut self) -> bool {
        let p = self.config.rollback_probability;
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.rng.gen_bool(p)
        }
    }
}

/// Map a simulated failure onto the trace vocabulary (same mapping the
/// native runtime uses).
fn rollback_cause(reason: SpecFailure) -> RollbackCause {
    match reason {
        SpecFailure::ReadConflict | SpecFailure::LocalValidationFailed => RollbackCause::Conflict,
        SpecFailure::BufferOverflow | SpecFailure::LocalBufferOverflow => RollbackCause::Overflow,
        SpecFailure::Injected => RollbackCause::Injected,
        SpecFailure::UnregisteredAddress | SpecFailure::Cascaded | SpecFailure::NoSync => {
            RollbackCause::Other
        }
    }
}

fn intersects(a: &HashSet<Addr>, b: &HashSet<Addr>) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small.iter().any(|x| large.contains(x))
}

/// Simulate `recording` under `config`.
pub fn simulate(recording: &Recording, config: SimConfig) -> SimResult {
    Scheduler::new(recording, config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record_region;
    use mutls_membuf::{GlobalMemory, LINE_GRAIN_LOG2};
    use mutls_runtime::{task, SpecResult, TlsContext};
    use std::sync::Arc;

    /// A region whose child reads a word that *false-shares* a line with
    /// the word the parent writes mid-flight: a range conflict at line
    /// grain, never a word conflict.
    fn false_sharing_recording() -> crate::Recording {
        let memory = Arc::new(GlobalMemory::new(1 << 12));
        let cells = memory.alloc::<u64>(16);
        record_region(Arc::clone(&memory), move |ctx| {
            fn region<C: TlsContext>(
                ctx: &mut C,
                cells: mutls_membuf::GPtr<u64>,
            ) -> SpecResult<()> {
                let cont = task(move |ctx: &mut C| {
                    // Word 1 shares line 0 with word 0 below.
                    let v = ctx.load(&cells, 1)?;
                    ctx.work(20_000)?;
                    ctx.store(&cells, 8, v + 1) // a different line
                });
                let handle = ctx.fork(1, cont)?;
                // Long enough that the child is already in flight, short
                // enough that it has not finished when this publishes.
                ctx.work(5_000)?;
                ctx.store(&cells, 0, 7)?;
                ctx.work(5_000)?;
                ctx.join(handle)?;
                Ok(())
            }
            region(ctx, cells)
        })
    }

    #[test]
    fn false_sharing_retries_under_value_predict_and_squashes_under_cascade() {
        let recording = false_sharing_recording();
        let at = |recovery: RecoveryConfig| {
            simulate(
                &recording,
                SimConfig::with_cpus(2)
                    .grain_log2(LINE_GRAIN_LOG2)
                    .recovery(recovery),
            )
        };
        // Legacy single-version engine: the conflict is range-only, value
        // prediction repairs it — a retry, not a rollback.  (Under the
        // mvcc default the ring precise-passes it instead; see
        // `mvcc_turns_false_sharing_retries_into_precise_passes`.)
        let repaired = at(RecoveryConfig::targeted_with_retry());
        assert_eq!(repaired.report.retried_threads, 1);
        assert_eq!(repaired.report.rolled_back_threads, 0);
        assert_eq!(repaired.report.speculative.counters.retries_succeeded, 1);
        // Cascade-only baseline: the same conflict squashes the child.
        let squashed = at(RecoveryConfig::cascade_only());
        assert_eq!(squashed.report.retried_threads, 0);
        assert!(squashed.report.rolled_back_threads >= 1);
        assert!(squashed.report.speculative.counters.cascade_fallbacks >= 1);
        // The squash wastes work the retry keeps.
        assert!(squashed.report.wasted_work() > repaired.report.wasted_work());
        // At word grain the conflict does not exist at all.
        let exact = simulate(
            &recording,
            SimConfig::with_cpus(2).recovery(RecoveryConfig::targeted_with_retry()),
        );
        assert_eq!(exact.report.retried_threads, 0);
        assert_eq!(exact.report.rolled_back_threads, 0);
    }

    #[test]
    fn mvcc_turns_false_sharing_retries_into_precise_passes() {
        let recording = false_sharing_recording();
        let at = |recovery: RecoveryConfig| {
            simulate(
                &recording,
                SimConfig::with_cpus(2)
                    .grain_log2(LINE_GRAIN_LOG2)
                    .recovery(recovery)
                    .trace(true),
            )
        };
        // Legacy engine: the range-only conflict costs a value-predict
        // retry at the join.
        let legacy = at(RecoveryConfig::targeted_with_retry());
        assert_eq!(legacy.report.retried_threads, 1);
        assert_eq!(legacy.report.precise_passes(), 0);
        // mvcc: the version ring proves the parent's line-sharing write
        // missed the word the child read — no doom, no retry, a precise
        // pass priced at one ring probe.
        let mvcc = at(RecoveryConfig::mvcc());
        assert_eq!(mvcc.report.retried_threads, 0);
        assert_eq!(mvcc.report.rolled_back_threads, 0);
        assert!(mvcc.report.precise_passes() >= 1);
        assert_eq!(
            mvcc.report.commit_log.ring_depth,
            mutls_membuf::DEFAULT_RING_DEPTH
        );
        assert_eq!(mvcc.report.commit_log.ring_overflows, 0);
        assert!(mvcc.events.iter().any(|e| matches!(
            e.kind,
            EventKind::ValidateEnd {
                outcome: ValidateOutcome::PrecisePass
            }
        )));
        // The probe undercuts the retry it replaces.
        assert!(mvcc.parallel_cycles <= legacy.parallel_cycles);
        // The cascade baseline's false-sharing squash now tells the trace
        // it was conservative, not a proven dependence violation.
        let squashed = at(RecoveryConfig::cascade_only());
        assert!(squashed.events.iter().any(|e| matches!(
            e.kind,
            EventKind::ValidateEnd {
                outcome: ValidateOutcome::ConservativeDoom
            }
        )));
        // Determinism survives the mvcc engine.
        let again = at(RecoveryConfig::mvcc());
        let ser = |r: &RunReport| {
            let mut out = String::new();
            use serde::Serialize;
            r.serialize_json(&mut out);
            out
        };
        assert_eq!(ser(&mvcc.report), ser(&again.report));
    }

    #[test]
    fn grain_control_replay_splits_a_false_sharing_region_deterministically() {
        // Adaptive mode: word floor, regions start at page.  The
        // false-sharing recording keeps retrying at page grain, so the
        // controller must re-split the region — and the whole run must
        // stay byte-deterministic.
        let recording = false_sharing_recording();
        let config = || SimConfig {
            grain_control: GrainControlConfig::adaptive().tick_commits(1),
            ..SimConfig::with_cpus(2)
        };
        let result = simulate(&recording, config());
        assert!(
            result.report.commit_log.regrains > 0,
            "suspect spikes must trigger a re-split"
        );
        assert!(
            result
                .report
                .region_grains
                .iter()
                .any(|&(grain, _)| grain < mutls_membuf::PAGE_GRAIN_LOG2),
            "some region must have left page grain: {:?}",
            result.report.region_grains
        );
        // Stamps are counted in replay now (the graincontrol sweep's
        // acceptance column).
        assert!(result.report.commit_log.commits > 0);
        assert!(result.report.commit_log.stamp_writes >= result.report.commit_log.commits);
        // Determinism survives the controller.
        let again = simulate(&recording, config());
        let ser = |r: &RunReport| {
            let mut out = String::new();
            use serde::Serialize;
            r.serialize_json(&mut out);
            out
        };
        assert_eq!(ser(&result.report), ser(&again.report));
    }

    /// Lock-free pricing replaces lock-handoff charges with per-contender
    /// CAS retries, keeps the schedule itself identical (same commits,
    /// same threads), and stays byte-deterministic.
    #[test]
    fn lock_free_pricing_reports_cas_retries_instead_of_lock_waits() {
        // A speculation chain over one page (= one shard): every chunk
        // stores its word in an *early* segment (split off by the check
        // point) and then works for a long time, so when chunk i commits
        // at the root's join, chunks i+1.. are still in flight with their
        // stores already buffered — in-flight same-shard contenders, each
        // a modeled CAS retry.
        let memory = Arc::new(GlobalMemory::new(1 << 12));
        let out = memory.alloc::<i64>(8);
        let recording = record_region(Arc::clone(&memory), move |ctx| {
            fn run<C: TlsContext>(
                ctx: &mut C,
                out: mutls_membuf::GPtr<i64>,
                i: usize,
                chunks: usize,
            ) -> SpecResult<()> {
                if i + 1 < chunks {
                    let cont = task(move |ctx: &mut C| run(ctx, out, i + 1, chunks));
                    let h = ctx.fork(0, cont)?;
                    ctx.store(&out, i, i as i64)?;
                    ctx.check_point()?;
                    ctx.work(50_000)?;
                    ctx.join(h)?;
                } else {
                    ctx.store(&out, i, i as i64)?;
                    ctx.work(50_000)?;
                }
                Ok(())
            }
            run(ctx, out, 0, 6)
        });
        let locked = simulate(&recording, SimConfig::with_cpus(8));
        let lock_free = simulate(&recording, SimConfig::with_cpus(8).commit_lock_free(true));
        // Locked pricing: lock waits recorded, no CAS retries anywhere.
        assert_eq!(locked.report.commit_log.cas_retries, 0);
        assert!(
            locked
                .report
                .latency
                .row(LatencyPhase::CommitLockWait)
                .unwrap()
                .count
                > 0
        );
        assert_eq!(
            locked
                .report
                .latency
                .row(LatencyPhase::CommitCasRetry)
                .unwrap()
                .count,
            0
        );
        // Lock-free pricing: a chunk publishing while later chunks are in
        // flight pays CAS retries; no lock waits are charged at all.
        assert!(
            lock_free.report.commit_log.cas_retries > 0,
            "publishing while later chunks are in flight must model contention"
        );
        assert_eq!(
            lock_free
                .report
                .latency
                .row(LatencyPhase::CommitLockWait)
                .unwrap()
                .count,
            0
        );
        assert!(
            lock_free
                .report
                .latency
                .row(LatencyPhase::CommitCasRetry)
                .unwrap()
                .count
                > 0
        );
        // Only the pricing differs — the schedule commits the same threads.
        assert_eq!(
            locked.report.committed_threads,
            lock_free.report.committed_threads
        );
        // Determinism survives the new branch.
        let again = simulate(&recording, SimConfig::with_cpus(8).commit_lock_free(true));
        let ser = |r: &RunReport| {
            let mut out = String::new();
            use serde::Serialize;
            r.serialize_json(&mut out);
            out
        };
        assert_eq!(ser(&lock_free.report), ser(&again.report));
    }

    /// Time Warp acceptance gate, shard-rollback edition: the false-
    /// sharing recording is a ready-made cross-shard straggler — the
    /// parent's mid-flight publish lands in the child's 20k-cycle
    /// segment's virtual past, so the shard's precomputed scan *must* be
    /// invalidated (≥1 shard rollback) and the run must still serialize
    /// byte-identically to sequential at every thread count and policy.
    #[test]
    fn time_warp_straggler_rolls_back_a_shard_and_stays_byte_identical() {
        let recording = false_sharing_recording();
        let ser = |r: &RunReport| {
            let mut out = String::new();
            use serde::Serialize;
            r.serialize_json(&mut out);
            out
        };
        let config = || SimConfig::with_cpus(2).grain_log2(LINE_GRAIN_LOG2);
        let sequential = simulate(&recording, config());
        assert_eq!(sequential.warp.sim_threads, 1);
        assert_eq!(sequential.warp.requests, 0);
        assert_eq!(sequential.warp.shard_rollbacks, 0);
        for threads in [2usize, 4] {
            for policy in [ShardPolicy::CpuStripe, ShardPolicy::FiberHash] {
                let parallel = simulate(
                    &recording,
                    config().sim_threads(threads).shard_policy(policy),
                );
                assert_eq!(
                    ser(&parallel.report),
                    ser(&sequential.report),
                    "sim_threads={threads} policy={policy:?} diverged"
                );
                assert_eq!(parallel.warp.sim_threads, threads);
                assert!(parallel.warp.requests > 0, "no advances were posted");
                assert!(
                    parallel.warp.shard_rollbacks >= 1,
                    "the straggler publish must invalidate an advance"
                );
                // The rollback count is a pure function of the schedule.
                let again = simulate(
                    &recording,
                    config().sim_threads(threads).shard_policy(policy),
                );
                assert_eq!(again.warp.shard_rollbacks, parallel.warp.shard_rollbacks);
            }
        }
    }

    /// Degenerate pub-field configs (zero shards, sub-word grain) must be
    /// normalized by the scheduler, not panic or mis-mask — SimConfig is
    /// routinely built via struct literals.
    #[test]
    fn degenerate_grain_and_shard_configs_are_normalized() {
        let memory = Arc::new(GlobalMemory::new(1 << 12));
        let cell = memory.alloc::<u64>(4);
        let recording = record_region(Arc::clone(&memory), |ctx| {
            for i in 0..4 {
                let v = ctx.load(&cell, i)?;
                ctx.store(&cell, i, v + 1)?;
            }
            Ok(())
        });
        for (grain_log2, shards) in [(0u32, 0usize), (1, 3), (6, 1)] {
            let result = simulate(
                &recording,
                SimConfig {
                    commit_log: CommitLogConfig {
                        grain_log2,
                        shards,
                        lock_free: true,
                        ..CommitLogConfig::default()
                    },
                    ..SimConfig::with_cpus(2)
                },
            );
            assert!(result.parallel_cycles > 0);
        }
    }
}
