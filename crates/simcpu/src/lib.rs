//! # mutls-simcpu — deterministic multicore simulation for MUTLS
//!
//! The paper evaluates MUTLS on a 64-core AMD Opteron 6274.  This crate
//! substitutes for that machine: it executes a speculative program *once,
//! sequentially*, recording the task tree induced by its fork/join
//! annotations ([`RecordContext`] / [`Recording`]), and then replays the
//! trace on any number of virtual CPUs with a discrete-event scheduler
//! ([`Scheduler`]) under a configurable [`CostModel`], forking model and
//! injected rollback probability.
//!
//! Results are deterministic and independent of the host's core count, so
//! the paper's speedup curves, efficiency metrics, breakdowns and
//! forking-model comparisons (Figures 3–11) can be regenerated anywhere.
//!
//! ```
//! use std::sync::Arc;
//! use mutls_membuf::GlobalMemory;
//! use mutls_runtime::{task, TlsContext};
//! use mutls_simcpu::{record_region, simulate, RecordContext, SimConfig};
//!
//! let memory = Arc::new(GlobalMemory::new(1 << 16));
//! let out = memory.alloc::<i64>(2);
//! let recording = record_region(Arc::clone(&memory), |ctx| {
//!     let second = task(move |ctx: &mut RecordContext| {
//!         ctx.work(100_000)?;
//!         ctx.store(&out, 1, 2)?;
//!         ctx.barrier()
//!     });
//!     let h = ctx.fork(0, second)?;
//!     ctx.work(100_000)?;
//!     ctx.store(&out, 0, 1)?;
//!     ctx.join(h)?;
//!     Ok(())
//! });
//! let result = simulate(&recording, SimConfig::with_cpus(1));
//! assert!(result.speedup() > 1.5, "two halves overlap on 1+1 CPUs");
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod parsim;
pub mod record;
pub mod schedule;

pub use cost::CostModel;
pub use mutls_metrics::{MetricsConfig, MetricsSeries, MetricsSnapshot};
pub use parsim::{ShardPolicy, WarpStats};
pub use record::{NodeId, RecordContext, Recording, Segment, SimEvent, TaskNode};
pub use schedule::{simulate, Scheduler, SimConfig, SimResult};

use std::sync::Arc;

use mutls_membuf::GlobalMemory;
use mutls_runtime::{SpecAbort, SpecResult};

/// Record the speculative region `f` against `memory`, producing a
/// [`Recording`] that can be simulated any number of times.
///
/// The closure is executed exactly once, sequentially, so all of its
/// memory effects are applied to `memory` (program results are correct
/// regardless of later simulated speculation decisions).
///
/// # Panics
/// Panics if the region itself aborts (which indicates a structural error
/// in the workload, not a speculation failure).
pub fn record_region<F>(memory: Arc<GlobalMemory>, f: F) -> Recording
where
    F: FnOnce(&mut RecordContext) -> SpecResult<()>,
{
    let mut ctx = RecordContext::new(memory);
    match f(&mut ctx) {
        Ok(()) | Err(SpecAbort::BarrierReached) => {}
        Err(other) => panic!("recording aborted: {other:?}"),
    }
    ctx.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutls_runtime::{task, ForkModel, TlsContext};

    /// Build a chain-of-chunks recording: `chunks` chunks of `work` units,
    /// each chunk forking the continuation that processes the rest
    /// (the loop-speculation pattern).
    fn chain_recording(chunks: usize, work: u64) -> Recording {
        let memory = Arc::new(GlobalMemory::new(1 << 20));
        let out = memory.alloc::<i64>(chunks);
        fn run(
            ctx: &mut RecordContext,
            out: mutls_membuf::GPtr<i64>,
            i: usize,
            chunks: usize,
            work: u64,
        ) -> SpecResult<()> {
            if i + 1 < chunks {
                let cont = task(move |ctx: &mut RecordContext| run(ctx, out, i + 1, chunks, work));
                let h = ctx.fork(0, cont)?;
                ctx.work(work)?;
                ctx.store(&out, i, i as i64)?;
                ctx.join(h)?;
            } else {
                ctx.work(work)?;
                ctx.store(&out, i, i as i64)?;
            }
            Ok(())
        }
        record_region(Arc::clone(&memory), |ctx| run(ctx, out, 0, chunks, work))
    }

    /// A divide-and-conquer tree recording of depth `depth`.
    fn tree_recording(depth: u32, leaf_work: u64) -> Recording {
        let memory = Arc::new(GlobalMemory::new(1 << 20));
        fn run(ctx: &mut RecordContext, depth: u32, leaf_work: u64) -> SpecResult<()> {
            if depth == 0 {
                return ctx.work(leaf_work);
            }
            let cont = task(move |ctx: &mut RecordContext| {
                run(ctx, depth - 1, leaf_work)?;
                ctx.barrier()
            });
            let h = ctx.fork(depth, cont)?;
            run(ctx, depth - 1, leaf_work)?;
            ctx.join(h)?;
            Ok(())
        }
        record_region(memory, |ctx| run(ctx, depth, leaf_work))
    }

    #[test]
    fn chain_speedup_scales_with_cpus() {
        let rec = chain_recording(32, 50_000);
        let s1 = simulate(&rec, SimConfig::with_cpus(1)).speedup();
        let s4 = simulate(&rec, SimConfig::with_cpus(4)).speedup();
        let s16 = simulate(&rec, SimConfig::with_cpus(16)).speedup();
        assert!(s1 > 1.0, "s1 = {s1}");
        assert!(s4 > s1, "s4 = {s4} vs s1 = {s1}");
        assert!(s16 > s4 * 1.5, "s16 = {s16} vs s4 = {s4}");
        assert!(s16 < 32.0);
    }

    #[test]
    fn out_of_order_bounds_loop_parallelism_to_two_threads() {
        let rec = chain_recording(32, 50_000);
        let mixed = simulate(&rec, SimConfig::with_cpus(16)).speedup();
        let ooo = simulate(
            &rec,
            SimConfig::with_cpus(16).fork_model(ForkModel::OutOfOrder),
        )
        .speedup();
        assert!(ooo <= 2.2, "out-of-order speedup should be ≈2, got {ooo}");
        assert!(mixed > ooo * 2.0, "mixed {mixed} vs out-of-order {ooo}");
    }

    #[test]
    fn in_order_matches_mixed_on_chains_but_not_trees() {
        let chain = chain_recording(32, 50_000);
        let in_order = simulate(
            &chain,
            SimConfig::with_cpus(16).fork_model(ForkModel::InOrder),
        )
        .speedup();
        let mixed = simulate(&chain, SimConfig::with_cpus(16)).speedup();
        assert!(
            (in_order / mixed) > 0.8,
            "in-order {in_order} vs mixed {mixed}"
        );

        let tree = tree_recording(6, 20_000);
        let in_order_tree = simulate(
            &tree,
            SimConfig::with_cpus(16).fork_model(ForkModel::InOrder),
        )
        .speedup();
        let mixed_tree = simulate(&tree, SimConfig::with_cpus(16)).speedup();
        assert!(
            mixed_tree > in_order_tree * 1.3,
            "mixed {mixed_tree} should beat in-order {in_order_tree} on tree recursion"
        );
    }

    #[test]
    fn conflicts_cause_rollbacks_and_hurt_speedup() {
        let memory = Arc::new(GlobalMemory::new(1 << 16));
        let shared = memory.alloc::<i64>(4);
        let rec = record_region(Arc::clone(&memory), |ctx| {
            let shared2 = shared;
            let cont = task(move |ctx: &mut RecordContext| {
                ctx.work(10_000)?;
                // Reads an address the parent writes during S1 → conflict.
                let v = ctx.load(&shared2, 0)?;
                ctx.store(&shared2, 1, v + 1)?;
                ctx.barrier()
            });
            let h = ctx.fork(0, cont)?;
            ctx.work(10_000)?;
            ctx.store(&shared, 0, 99)?;
            ctx.join(h)?;
            Ok(())
        });
        let result = simulate(&rec, SimConfig::with_cpus(2));
        assert_eq!(result.report.rolled_back_threads, 1);
        assert!(result.speedup() < 1.1, "rollback removes the overlap");
        // Correctness of the recording itself is unaffected.
        assert_eq!(rec.memory.get(&shared, 1), 100);
    }

    #[test]
    fn injected_rollbacks_degrade_performance_monotonically() {
        let rec = chain_recording(32, 50_000);
        let clean = simulate(&rec, SimConfig::with_cpus(8)).speedup();
        let some = simulate(&rec, SimConfig::with_cpus(8).rollback_probability(0.2)).speedup();
        let all = simulate(&rec, SimConfig::with_cpus(8).rollback_probability(1.0)).speedup();
        assert!(clean > some, "clean {clean} vs 20% {some}");
        assert!(some > all, "20% {some} vs 100% {all}");
        assert!(all <= 1.05, "all-rollback is sequential or worse: {all}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let rec = tree_recording(5, 10_000);
        let a = simulate(&rec, SimConfig::with_cpus(7).rollback_probability(0.3));
        let b = simulate(&rec, SimConfig::with_cpus(7).rollback_probability(0.3));
        assert_eq!(a.parallel_cycles, b.parallel_cycles);
        assert_eq!(a.report.rolled_back_threads, b.report.rolled_back_threads);
    }

    #[test]
    fn trace_event_stream_is_deterministic_and_causal() {
        use mutls_trace::EventKind;
        use serde::Serialize;

        let rec = chain_recording(16, 20_000);
        let config = || {
            SimConfig::with_cpus(4)
                .rollback_probability(0.25)
                .trace(true)
        };
        let a = simulate(&rec, config());
        let b = simulate(&rec, config());
        assert!(!a.events.is_empty(), "tracing on records events");

        // Byte-identical streams across two identical runs: the flight
        // recorder must never leak host state or hash order into the
        // deterministic replay.
        let json = |events: &[mutls_trace::TraceEvent]| {
            let mut out = String::new();
            for event in events {
                event.serialize_json(&mut out);
                out.push('\n');
            }
            out
        };
        assert_eq!(json(&a.events), json(&b.events));

        // The causal chain is present: forks start threads, validations
        // bracket joins, and the injected rollbacks surface as events.
        let count =
            |pred: fn(&EventKind) -> bool| a.events.iter().filter(|e| pred(&e.kind)).count();
        assert!(count(|k| matches!(k, EventKind::SpecStart { .. })) > 0);
        assert!(count(|k| matches!(k, EventKind::Commit)) > 0);
        assert!(count(|k| matches!(k, EventKind::Rollback { .. })) > 0);
        assert_eq!(
            count(|k| matches!(k, EventKind::ValidateBegin { .. })),
            count(|k| matches!(k, EventKind::ValidateEnd { .. })),
        );
        // Timestamps are monotone within each lane (virtual time).
        for rank in a
            .events
            .iter()
            .map(|e| e.rank)
            .collect::<std::collections::BTreeSet<_>>()
        {
            let lane: Vec<u64> = a
                .events
                .iter()
                .filter(|e| e.rank == rank)
                .map(|e| e.ts)
                .collect();
            assert!(
                lane.windows(2).all(|w| w[0] <= w[1]),
                "lane {rank} monotone"
            );
        }

        // The histograms are always on — even an untraced run reports
        // validation latency — while the event stream stays empty.
        let untraced = simulate(&rec, SimConfig::with_cpus(4));
        assert!(untraced.events.is_empty());
        let validation = untraced
            .report
            .latency
            .phases
            .iter()
            .find(|row| row.phase == "validation")
            .expect("validation row");
        assert!(validation.count > 0);
    }

    #[test]
    fn report_phases_cover_runtime() {
        let rec = tree_recording(5, 10_000);
        let result = simulate(&rec, SimConfig::with_cpus(8));
        let report = &result.report;
        assert!(report.critical_path_efficiency() > 0.0);
        assert!(report.critical_path_efficiency() <= 1.0);
        assert!(report.speculative_path_efficiency() > 0.0);
        assert!(report.coverage() > 0.0);
        assert!(result.power_efficiency() <= 1.05);
        // Every speculative thread launched was either committed or rolled
        // back (re-executions may launch more threads than there are tasks).
        assert!(report.committed_threads + report.rolled_back_threads >= 1);
    }

    #[test]
    fn more_cpus_never_hurt_much() {
        let rec = tree_recording(7, 5_000);
        let s8 = simulate(&rec, SimConfig::with_cpus(8)).speedup();
        let s64 = simulate(&rec, SimConfig::with_cpus(64)).speedup();
        assert!(s64 >= s8 * 0.9, "s64 {s64} vs s8 {s8}");
    }
}
