//! Quickstart: programmer-directed speculation with the native runtime.
//!
//! Mirrors Figure 1 of the paper: the parent forks a speculative thread to
//! execute the continuation (`S2`, here: summing the second half of an
//! array) while it executes `S1` (summing the first half), then joins.
//!
//! Run with `cargo run --release --example quickstart`.

use mutls_runtime::{task, JoinOutcome, Runtime, RuntimeConfig, SpecContext, TlsContext};

fn main() {
    let runtime = Runtime::new(RuntimeConfig::with_cpus(2).memory_bytes(1 << 20));
    let data = runtime.alloc::<i64>(1024);
    let partial = runtime.alloc::<i64>(2);
    let memory = runtime.memory();
    for i in 0..data.len() {
        memory.set(&data, i, i as i64);
    }

    let (outcome, report) = runtime.run(|ctx| {
        let n = data.len();
        // __builtin_MUTLS_fork(0): speculate on the continuation from the
        // join point — the second half of the sum.
        let continuation = task(move |ctx: &mut SpecContext| {
            let mut sum = 0i64;
            for i in n / 2..n {
                sum += ctx.load(&data, i)?;
            }
            ctx.store(&partial, 1, sum)?;
            // __builtin_MUTLS_barrier(0): stop here until joined.
            ctx.barrier()
        });
        let handle = ctx.fork(0, continuation)?;

        // S1: the parent sums the first half meanwhile.
        let mut sum = 0i64;
        for i in 0..n / 2 {
            sum += ctx.load(&data, i)?;
        }
        ctx.store(&partial, 0, sum)?;

        // __builtin_MUTLS_join(0): validate + commit, or run inline.
        ctx.join(handle)
    });

    let total = memory.get(&partial, 0) + memory.get(&partial, 1);
    let expected: i64 = (0..data.len() as i64).sum();
    assert_eq!(total, expected);

    println!("sum of 0..1024           = {total}");
    println!("speculation outcome       = {outcome:?}");
    println!(
        "speculative threads       = {} committed, {} rolled back",
        report.committed_threads, report.rolled_back_threads
    );
    println!(
        "critical path efficiency  = {:.2}",
        report.critical_path_efficiency()
    );
    match outcome {
        JoinOutcome::Committed => println!("the continuation ran speculatively and committed"),
        JoinOutcome::NotSpeculated => println!("no idle CPU: the parent ran the continuation"),
        JoinOutcome::RolledBack(reason) => println!("rolled back ({reason}), re-executed inline"),
    }
}
