//! Adaptive governor on the native runtime: run nqueen with 100% injected
//! rollbacks under the Static and Throttle policies and compare how much
//! speculation each launches.  With throttling the pathological site is
//! suppressed after a few samples, yet the result stays correct because
//! the parent executes the continuations inline.
//!
//! Run with `cargo run --release --example adaptive_governor`.

use mutls_adaptive::{GovernorConfig, PolicyKind};
use mutls_runtime::{Runtime, RuntimeConfig};
use mutls_workloads::{
    arena_bytes, checksum, reference_checksum, run_speculative, setup, site_label, Scale,
    WorkloadKind,
};

fn run(policy: PolicyKind) {
    let kind = WorkloadKind::Nqueen;
    let runtime = Runtime::new(
        RuntimeConfig::with_cpus(2)
            .memory_bytes(arena_bytes(kind, Scale::Tiny))
            .rollback_probability(1.0)
            .governor(
                GovernorConfig::with_policy(policy)
                    .min_samples(2)
                    .probe_interval(8),
            ),
    );
    let memory = runtime.memory();
    let data = setup(kind, Scale::Tiny, &memory);
    let (_, report) = runtime.run(|ctx| run_speculative(ctx, &data));
    let correct = checksum(&memory, &data) == reference_checksum(kind, Scale::Tiny);
    println!("policy = {policy}");
    println!("  result correct       = {correct}");
    println!(
        "  committed / rolled   = {} / {}",
        report.committed_threads, report.rolled_back_threads
    );
    println!("  throttled forks      = {}", report.throttled_forks());
    for site in &report.sites {
        let name = site_label(site.site).unwrap_or("?");
        println!(
            "  site {name}: {} forks, {} throttled, rollback rate {:.2}",
            site.forks, site.throttled, site.rollback_rate
        );
    }
    assert!(
        correct,
        "speculative result must match the sequential baseline"
    );
}

fn main() {
    println!("nqueen (tiny) with 100% injected rollbacks on 2 speculative CPUs\n");
    run(PolicyKind::Static);
    run(PolicyKind::Throttle);
}
