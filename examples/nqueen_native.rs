//! Depth-first search (N-queens) on the *native* threaded runtime:
//! verifies that the speculative execution produces exactly the
//! sequential result and shows the per-path statistics, including a
//! forced-rollback run (the paper's §V-D sensitivity knob).
//!
//! Run with `cargo run --release --example nqueen_native`.

use mutls_runtime::{Runtime, RuntimeConfig};
use mutls_workloads::{nqueen, reference_checksum, Scale, WorkloadKind};

fn run_native(rollback_probability: f64) -> (u64, mutls_runtime::RunReport) {
    let config = nqueen::Config::scaled();
    let runtime = Runtime::new(
        RuntimeConfig::with_cpus(4)
            .memory_bytes(1 << 20)
            .rollback_probability(rollback_probability),
    );
    let memory = runtime.memory();
    let data = nqueen::setup(&memory, &config);
    let (_, report) = runtime.run(|ctx| nqueen::run(ctx, data, config));
    (nqueen::result(&memory, &data, &config), report)
}

fn main() {
    let expected = reference_checksum(WorkloadKind::Nqueen, Scale::Scaled);
    println!("sequential solution count          = {expected}");

    let (solutions, report) = run_native(0.0);
    assert_eq!(solutions, expected, "speculative result must match");
    println!("speculative solution count         = {solutions}  (matches)");
    println!(
        "speculative threads                = {} committed, {} rolled back",
        report.committed_threads, report.rolled_back_threads
    );
    println!(
        "critical / speculative efficiency  = {:.2} / {:.2}",
        report.critical_path_efficiency(),
        report.speculative_path_efficiency()
    );
    println!(
        "parallel coverage                  = {:.2}",
        report.coverage()
    );

    // Even with every validation forced to fail, the runtime stays safe:
    // the parent re-executes each continuation and the answer is identical.
    let (solutions, report) = run_native(1.0);
    assert_eq!(solutions, expected, "rollbacks must never change results");
    println!(
        "with 100% injected rollbacks       = {solutions}  ({} rollbacks, still correct)",
        report.rolled_back_threads
    );
}
