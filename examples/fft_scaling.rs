//! Divide-and-conquer FFT on the multicore simulator: reproduces one
//! series of the paper's Figure 4 (memory-intensive speedups) and the
//! Figure 10 forking-model comparison for a single benchmark.
//!
//! Run with `cargo run --release --example fft_scaling`.

use std::sync::Arc;

use mutls_membuf::GlobalMemory;
use mutls_runtime::ForkModel;
use mutls_simcpu::{record_region, simulate, SimConfig};
use mutls_workloads::fft;

fn main() {
    let config = fft::Config::scaled();
    let memory = Arc::new(GlobalMemory::new(16 << 20));
    let data = fft::setup(&memory, &config);

    // Record the speculation trace once (this also computes the FFT).
    let recording = record_region(Arc::clone(&memory), |ctx| fft::run(ctx, data, config));
    println!(
        "fft: n = {}, {} speculative tasks, memory density = {:.3}",
        config.n,
        recording.task_count() - 1,
        recording.memory_density()
    );

    println!("\nspeedup vs number of CPUs (mixed forking model):");
    for cpus in [1, 2, 4, 8, 16, 32, 64] {
        let result = simulate(&recording, SimConfig::with_cpus(cpus));
        println!(
            "  {cpus:>3} CPUs: speedup {:6.2}   power efficiency {:5.2}   coverage {:6.2}",
            result.speedup(),
            result.power_efficiency(),
            result.report.coverage()
        );
    }

    println!("\nforking-model comparison at 32 CPUs (normalized to mixed):");
    let mixed = simulate(&recording, SimConfig::with_cpus(32)).speedup();
    for model in [ForkModel::InOrder, ForkModel::OutOfOrder, ForkModel::Mixed] {
        let speedup = simulate(&recording, SimConfig::with_cpus(32).fork_model(model)).speedup();
        println!(
            "  {:<12} speedup {:6.2}   normalized {:4.2}",
            model.label(),
            speedup,
            speedup / mixed
        );
    }
}
